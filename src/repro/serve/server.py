"""The solve server: a cache-warmed, batched serving runtime.

:class:`SolveServer` turns the one-shot :func:`repro.core.solve_service`
call into a long-running system shaped like production serving:

* **admission control** — a bounded queue; when it is full, ``submit``
  fails fast with :class:`~repro.serve.batching.Backpressure`;
* **micro-batching** — worker threads drain same-workload-class
  requests together, sharing one plan lookup and one solver setup
  (NumPy kernels release the GIL, so workers genuinely overlap);
* **stale-while-tune** — a cold workload class is answered immediately
  from the paper's heuristic plan while a background job runs the real
  DP tune and hot-swaps the tuned plan into the cache atomically, with
  the swap provenance persisted into the trial log;
* **telemetry** — per-request latency histograms, cache counters,
  queue depth, and swap events (:mod:`repro.serve.telemetry`).

Batches can optionally run on the work-stealing runtime
(:mod:`repro.runtime.scheduler`) instead of sequentially inside one
worker thread, connecting the serving layer to the paper's parallel
execution model.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.machines.presets import get_preset
from repro.machines.profile import MachineProfile
from repro.obs.profile import SolveProfiler
from repro.obs.trace import NOOP_TRACER, NoopTracer, Span, SpanContext, Tracer
from repro.operators.spec import OperatorSpec
from repro.serve.batching import Backpressure, RequestQueue
from repro.serve.cache import CacheEntry, PlanCache, ServeKey
from repro.serve.telemetry import Telemetry
from repro.tuner.executor import PlanExecutor
from repro.tuner.plan import DEFAULT_ACCURACIES
from repro.util.clock import MONOTONIC_CLOCK, Clock
from repro.workloads.problem import PoissonProblem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.registry import PlanRegistry

__all__ = ["ServeResult", "SolveRequest", "SolveServer"]


@dataclass(frozen=True)
class ServeResult:
    """What a completed request resolves to."""

    solution: np.ndarray
    #: provenance of the plan that produced the solution
    plan_source: str
    #: cache generation of that plan (bumps on every hot swap)
    generation: int
    #: True when the request was served by a stale (fallback) entry
    stale: bool
    #: how many requests shared this request's batch
    batch_size: int
    #: submit-to-completion latency in seconds
    latency_s: float
    #: trace id correlating this request's span tree (None when tracing
    #: is off)
    trace_id: str | None = None


@dataclass
class SolveRequest:
    """One queued request (internal)."""

    problem: PoissonProblem
    target_accuracy: float
    key: ServeKey
    profile: MachineProfile
    future: "Future[ServeResult]"
    #: server-clock timestamp (set by ``submit`` from the injected clock)
    submitted_at: float = 0.0
    #: optional caller-owned output grid; the solve then runs in place in
    #: the caller's buffer (the sharded tier passes shared-memory views
    #: here, so solutions never cross a process boundary by copy)
    out: np.ndarray | None = None
    #: root span of this request's trace (None when tracing is off);
    #: carried explicitly because contextvars do not cross the queue
    #: hand-off into worker threads
    span: Span | None = None


class SolveServer:
    """Long-running solve service over a plan cache and worker pool.

    Parameters
    ----------
    machine:
        Preset name or :class:`MachineProfile` requests are priced and
        tuned for (per-request override via ``submit(machine=...)``).
    store:
        Plan registry backing the cache — a
        :class:`~repro.store.registry.PlanRegistry`,
        :class:`~repro.store.trialdb.TrialDB`, path, or None for
        :func:`repro.core.default_registry`.
    workers:
        Serving threads.  NumPy kernels release the GIL, so >1 overlaps
        solves on multi-core hosts.
    queue_size, batch_size:
        Admission-control bound and micro-batch cap.
    tune_jobs:
        Worker *processes* for background DP tunes (None/1 = in the
        tuner thread).
    scheduler:
        Optional :mod:`repro.runtime` scheduler (``SerialScheduler`` or
        ``WorkStealingScheduler``); batches of >1 request then execute
        as a task graph instead of a sequential loop.
    clock:
        Injectable :class:`~repro.util.clock.Clock` used for every
        *measured duration* (queue wait, solve time, request latency,
        background-tune time).  Tests inject a
        :class:`~repro.util.clock.ManualClock` so telemetry assertions
        are deterministic; lifecycle deadlines (shutdown/drain timeouts)
        intentionally stay on the real clock.
    slo_p99_s:
        Per-workload-class p99 latency target in seconds (None disables
        the SLO loop).  When a class's sliding-window p99 exceeds the
        target, its cached plan is hot-swapped to a faster-but-coarser
        degraded variant (:meth:`PlanCache.degrade`); once the window
        recovers below ``slo_recovery_fraction * slo_p99_s`` the
        full-accuracy plan swaps back.  Both swaps are trial-logged
        with ``serve_swap`` provenance.  The check runs synchronously
        after each completed request, so a breach triggers within one
        telemetry window — deterministically testable with a
        :class:`ManualClock`.
    slo_window_s, slo_min_samples:
        Sliding-window length and the minimum live samples before the
        controller acts (protects against deciding on one outlier).
    slo_degrade_rungs:
        How many accuracy-ladder rungs a degraded plan drops.
    model_fallback:
        Cold keys serve a model-predicted plan (the budgeted BO search
        warm-started from the store, :mod:`repro.modeltuner`) instead of
        the fixed heuristic while the background tune runs.
    """

    def __init__(
        self,
        machine: str | MachineProfile = "intel",
        store: object = None,
        *,
        workers: int = 2,
        queue_size: int = 128,
        batch_size: int = 8,
        kind: str = "multigrid-v",
        accuracies: tuple[float, ...] = DEFAULT_ACCURACIES,
        seed: int | None = 0,
        instances: int = 3,
        tune_jobs: int | None = None,
        allow_nearest: bool = True,
        scheduler: Any | None = None,
        telemetry: Telemetry | None = None,
        clock: Clock | None = None,
        backend: str = "numpy",
        slo_p99_s: float | None = None,
        slo_window_s: float = 5.0,
        slo_min_samples: int = 8,
        slo_recovery_fraction: float = 0.8,
        slo_degrade_rungs: int = 1,
        tracer: Tracer | NoopTracer | None = None,
        profiler: SolveProfiler | None = None,
        op_span_min_points: int | None = None,
        model_fallback: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, not {workers}")
        if slo_p99_s is not None and slo_p99_s <= 0:
            raise ValueError(f"slo_p99_s must be > 0, not {slo_p99_s}")
        from repro.core.api import _resolve_registry

        self.clock = clock or MONOTONIC_CLOCK
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.profiler = profiler
        self.op_span_min_points = op_span_min_points
        self.profile = get_preset(machine) if isinstance(machine, str) else machine
        self.registry: "PlanRegistry" = _resolve_registry(store)
        self.telemetry = telemetry or Telemetry(
            clock=self.clock, window_s=slo_window_s
        )
        self.slo_p99_s = slo_p99_s
        self.slo_window_s = slo_window_s
        self.slo_min_samples = slo_min_samples
        self.slo_recovery_fraction = slo_recovery_fraction
        self.slo_degrade_rungs = slo_degrade_rungs
        self.cache = PlanCache(
            self.registry,
            kind=kind,
            accuracies=accuracies,
            seed=seed,
            instances=instances,
            allow_nearest=allow_nearest,
            telemetry=self.telemetry,
            backend=backend,
            tracer=self.tracer,
            model_fallback=model_fallback,
        )
        self.batch_size = batch_size
        self.tune_jobs = tune_jobs
        self.scheduler = scheduler
        self._queue: RequestQueue[SolveRequest] = RequestQueue(queue_size)
        self._state = threading.Condition()
        self._closed = False
        self._inflight = 0
        self._tuning: set[ServeKey] = set()
        self._tuner_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-tuner"
        )
        self._executors = threading.local()
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- client surface ---------------------------------------------------

    def submit(
        self,
        problem: PoissonProblem,
        target_accuracy: float,
        distribution: str | None = None,
        machine: str | MachineProfile | None = None,
        out: np.ndarray | None = None,
        trace_parent: SpanContext | None = None,
    ) -> "Future[ServeResult]":
        """Enqueue one request; returns a future resolving to
        :class:`ServeResult`.

        ``out``, when given, must be a writable grid of the problem's
        shape; the solve then runs in place in that buffer and
        ``ServeResult.solution`` *is* it (the shared-memory serving tier
        passes slot views here so responses are zero-copy).

        ``trace_parent`` joins this request to an existing trace (the
        sharded front door passes the context it stamped on the control
        message); without it, a traced request roots a fresh trace.

        Raises :class:`Backpressure` when the queue is full and
        :class:`RuntimeError` after :meth:`shutdown`.
        """
        if out is not None and (
            out.shape != problem.b.shape or not out.flags.writeable
        ):
            raise ValueError(
                f"out must be a writable array of shape {problem.b.shape}"
            )
        with self._state:
            if self._closed:
                raise RuntimeError("server is shut down")
        from repro.tuner.dynamic import resolve_distribution

        profile = self.profile
        if machine is not None:
            profile = get_preset(machine) if isinstance(machine, str) else machine
        dist = resolve_distribution(problem, distribution)
        key = self.cache.key_for(profile, problem.operator, problem.level, dist)
        future: "Future[ServeResult]" = Future()
        span: Span | None = None
        if self.tracer.enabled:
            span = self.tracer.start(
                "serve.request",
                parent=trace_parent,
                operator=key.operator,
                level=key.level,
                distribution=key.distribution,
                target_accuracy=target_accuracy,
            )
        request = SolveRequest(
            problem=problem,
            target_accuracy=target_accuracy,
            key=key,
            profile=profile,
            future=future,
            submitted_at=self.clock.now(),
            out=out,
            span=span,
        )
        try:
            depth = self._queue.put(key, request)
        except Backpressure:
            self.telemetry.incr("requests_rejected")
            if span is not None:
                span.set(rejected=True)
                self.tracer.finish(span)
            raise
        self.telemetry.incr("requests_submitted")
        self.telemetry.set_gauge("queue_depth", depth)
        return future

    def solve(
        self,
        problem: PoissonProblem,
        target_accuracy: float,
        distribution: str | None = None,
        timeout: float | None = None,
    ) -> ServeResult:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(problem, target_accuracy, distribution).result(timeout)

    def warm(
        self,
        distribution: str,
        level: int,
        operator: OperatorSpec | str | None = None,
        jobs: int | None = None,
    ) -> CacheEntry:
        """Synchronously tune-and-cache one workload class (no fallback
        will ever serve for a warmed key)."""
        return self.cache.warm(self.profile, distribution, level, operator, jobs=jobs)

    def warm_many(
        self,
        specs: Iterable[tuple[str, int, OperatorSpec | str | None]],
        jobs: int | None = None,
    ) -> list[CacheEntry]:
        return self.cache.warm_many(self.profile, specs, jobs=jobs)

    def stats(self) -> dict[str, Any]:
        """Telemetry snapshot (JSON-serializable)."""
        self.telemetry.set_gauge("queue_depth", self._queue.depth())
        self.telemetry.set_gauge("cached_keys", len(self.cache))
        return self.telemetry.snapshot()

    # -- lifecycle --------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the server (idempotent).

        ``drain=True`` waits for every admitted request to finish;
        ``drain=False`` cancels whatever is still queued.  Background
        tune jobs that have not started are dropped either way — plans
        they would have produced stay cold in the registry, which a
        future process can tune.
        """
        with self._state:
            already = self._closed
            self._closed = True
        self._queue.close()
        if not already and not drain:
            for request in self._queue.drain():
                request.future.cancel()
                self.telemetry.incr("requests_cancelled")
        if drain:
            deadline = None if timeout is None else time.monotonic() + timeout
            with self._state:
                while self._queue.depth() > 0 or self._inflight > 0:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                    self._state.wait(timeout=remaining if remaining else 0.1)
        for thread in self._workers:
            thread.join(timeout=timeout if drain else 5.0)
        self._tuner_pool.shutdown(wait=False, cancel_futures=True)

    def wait_for_swaps(self, timeout: float = 30.0) -> bool:
        """Block until no background tune is in flight (True on success).

        Lets tests and benchmarks observe the asynchronous half of
        stale-while-tune deterministically.  Waits on the state
        condition (notified when a tune finishes) instead of
        sleep-polling, so the wake-up is immediate and flake-free.
        """
        deadline = time.monotonic() + timeout
        with self._state:
            while self._tuning:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._state.wait(timeout=remaining)
            return True

    def __enter__(self) -> "SolveServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown(drain=True)

    # -- serving ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            batch = self._queue.take_batch(self.batch_size, timeout=0.05)
            if batch is None:
                return
            if not batch:
                continue
            with self._state:
                self._inflight += len(batch)
            try:
                self._serve_batch(batch)
            finally:
                with self._state:
                    self._inflight -= len(batch)
                    self._state.notify_all()
                self.telemetry.set_gauge("queue_depth", self._queue.depth())

    def _serve_batch(self, batch: list[SolveRequest]) -> None:
        head = batch[0]
        batch_started = self.clock.now()
        for request in batch:
            self.telemetry.observe(
                "queue_wait", batch_started - request.submitted_at
            )
        # The batch span covers formation + plan-cache decision, parented
        # under the head request's trace; it is finished *before* the
        # solves so a caller that collects spans when the head future
        # resolves (the shard worker) sees a complete tree.  Solve spans
        # of the head request still parent under it by id.
        batch_span: Span | None = None
        if self.tracer.enabled and head.span is not None:
            batch_span = self.tracer.start("serve.batch", parent=head.span)
        try:
            if batch_span is not None:
                with self.tracer.activate(batch_span):
                    entry = self.cache.get_or_fallback(
                        head.profile, head.key, len(batch)
                    )
            else:
                entry = self.cache.get_or_fallback(head.profile, head.key, len(batch))
        except Exception as exc:  # fallback tuning failed: fail the batch
            for request in batch:
                if request.future.set_running_or_notify_cancel():
                    request.future.set_exception(exc)
                if request.span is not None:
                    request.span.set(error=type(exc).__name__)
                    self.tracer.finish(request.span)
            self.telemetry.incr("requests_failed", len(batch))
            if batch_span is not None:
                batch_span.set(error=type(exc).__name__)
                self.tracer.finish(batch_span)
            return
        if batch_span is not None:
            batch_span.set(
                batch_size=len(batch),
                source=entry.source,
                stale=entry.stale,
                generation=entry.generation,
            )
            self.tracer.finish(batch_span)
        if entry.stale:
            self.telemetry.incr("fallback_served", len(batch))
            self._schedule_tune(
                head.key,
                head.profile,
                entry,
                trace_id=head.span.trace_id if head.span is not None else None,
            )
        self.telemetry.incr("batches")
        if len(batch) > 1:
            self.telemetry.incr("batched_requests", len(batch))
        executor = self._executor_for(head.key)
        if self.scheduler is not None and len(batch) > 1:
            # One request per distinct accuracy index runs inline first:
            # each distinct index exercises its own plan path, so this
            # populates every per-level operator instance and direct
            # factorization the batch needs, and the parallel tail only
            # reads those caches.  Requests whose target is off the
            # ladder also stay inline (they fail fast in _solve_one).
            inline, tail = [], []
            seen: set[int] = set()
            for request in batch:
                try:
                    acc_index = entry.plan.accuracy_index(request.target_accuracy)
                except ValueError:
                    acc_index = None
                if acc_index is None or acc_index not in seen:
                    if acc_index is not None:
                        seen.add(acc_index)
                    inline.append(request)
                else:
                    tail.append(request)
            for request in inline:
                self._solve_one(
                    request, entry, executor, len(batch),
                    parent=batch_span if request is head else None,
                )
            if tail:
                self._run_on_scheduler(tail, entry, executor, len(batch))
        else:
            for request in batch:
                self._solve_one(
                    request, entry, executor, len(batch),
                    parent=batch_span if request is head else None,
                )

    def _run_on_scheduler(
        self, requests: list[SolveRequest], entry: CacheEntry, executor: PlanExecutor,
        batch_size: int,
    ) -> None:
        from repro.runtime.task import TaskGraph

        graph = TaskGraph()
        for i, request in enumerate(requests):
            graph.add(
                f"solve-{i}",
                # bind loop vars; _solve_one never raises (it resolves the
                # request future), so scheduler error paths stay clean
                fn=lambda r=request: self._solve_one(r, entry, executor, batch_size),
            )
        self.scheduler.run(graph)

    def _solve_one(
        self,
        request: SolveRequest,
        entry: CacheEntry,
        executor: PlanExecutor,
        batch_size: int,
        parent: Span | None = None,
    ) -> None:
        if not request.future.set_running_or_notify_cancel():
            if request.span is not None:
                request.span.set(cancelled=True)
                self.tracer.finish(request.span)
            return
        solve_span: Span | None = None
        if self.tracer.enabled and request.span is not None:
            # The head request's solve nests under the batch span (same
            # trace); every other request's solve hangs off its own root.
            span_parent = parent if parent is not None else request.span
            solve_span = self.tracer.start(
                "serve.solve",
                parent=span_parent,
                plan_source=entry.source,
                batch_size=batch_size,
            )
        started = self.clock.now()
        try:
            from repro.grids.boundary import set_boundary_values
            from repro.tuner.plan import TunedFullMGPlan

            plan = entry.plan
            acc_index = plan.accuracy_index(request.target_accuracy)
            if entry.accuracy_cap is not None and acc_index > entry.accuracy_cap:
                acc_index = entry.accuracy_cap
                self.telemetry.incr("degraded_served")
            if request.out is not None:
                x = request.out
                x.fill(0.0)
                set_boundary_values(x, request.problem.boundary)
            else:
                x = request.problem.initial_guess()
            if solve_span is not None:
                solve_span.set(acc_index=acc_index)
                with self.tracer.activate(solve_span):
                    if isinstance(plan, TunedFullMGPlan):
                        executor.run_full_mg(plan, x, request.problem.b, acc_index)
                    else:
                        executor.run_v(plan, x, request.problem.b, acc_index)
            elif isinstance(plan, TunedFullMGPlan):
                executor.run_full_mg(plan, x, request.problem.b, acc_index)
            else:
                executor.run_v(plan, x, request.problem.b, acc_index)
        except Exception as exc:
            self.telemetry.incr("requests_failed")
            if solve_span is not None:
                solve_span.set(error=type(exc).__name__)
                self.tracer.finish(solve_span)
            if request.span is not None:
                request.span.set(error=type(exc).__name__)
                self.tracer.finish(request.span)
            request.future.set_exception(exc)
            return
        finished = self.clock.now()
        if solve_span is not None:
            self.tracer.finish(solve_span)
        self.telemetry.observe("solve", finished - started)
        latency = finished - request.submitted_at
        self.telemetry.observe("request_latency", latency)
        self.telemetry.incr("requests_completed")
        trace_id: str | None = None
        if request.span is not None:
            # Finish the root span *before* resolving the future, so a
            # waiter that collects this trace's spans on completion (the
            # shard worker shipping them back to the front door) sees
            # the whole tree.
            trace_id = request.span.trace_id
            self.tracer.finish(request.span)
        request.future.set_result(
            ServeResult(
                solution=x,
                plan_source=entry.source,
                generation=entry.generation,
                stale=entry.stale,
                batch_size=batch_size,
                latency_s=latency,
                trace_id=trace_id,
            )
        )
        if self.slo_p99_s is not None:
            self.telemetry.observe_windowed(
                f"slo:{request.key.label()}", latency, self.slo_window_s
            )
            self._slo_check(request.key, trace_id)

    def _slo_check(self, key: ServeKey, trace_id: str | None = None) -> None:
        """Degrade or restore ``key``'s plan from its windowed p99.

        Runs on the serving thread right after a completion, so the
        decision uses the freshest sample and lands within one window.
        Both directions require ``slo_min_samples`` live samples —
        a single outlier (or a near-empty recovering window) never
        flips the plan.
        """
        window = f"slo:{key.label()}"
        if self.telemetry.window_count(window) < self.slo_min_samples:
            return
        entry = self.cache.lookup(key)
        if entry is None:
            return
        p99 = self.telemetry.window_percentile(window, 0.99)
        target = self.slo_p99_s
        assert target is not None  # guarded by the caller
        if not entry.degraded and p99 > target:
            self.telemetry.incr("slo_breaches")
            self.cache.degrade(
                key,
                rungs=self.slo_degrade_rungs,
                observed_p99_s=p99,
                target_p99_s=target,
                trace_id=trace_id,
            )
        elif entry.degraded and p99 <= target * self.slo_recovery_fraction:
            self.telemetry.incr("slo_recoveries")
            self.cache.restore(
                key, observed_p99_s=p99, target_p99_s=target, trace_id=trace_id
            )

    def _executor_for(self, key: ServeKey) -> PlanExecutor:
        """Worker-local plan executor per operator (shared factorization
        cache across batches of the same workload class)."""
        cache: dict[str, PlanExecutor] | None = getattr(
            self._executors, "by_operator", None
        )
        if cache is None:
            cache = self._executors.by_operator = {}
        executor = cache.get(key.operator)
        if executor is None:
            executor = cache[key.operator] = PlanExecutor(
                operator=key.operator,
                tracer=self.tracer,
                profiler=self.profiler,
                op_span_min_points=self.op_span_min_points,
            )
        return executor

    # -- background tuning ------------------------------------------------

    def _schedule_tune(
        self,
        key: ServeKey,
        profile: MachineProfile,
        stale_entry: CacheEntry,
        trace_id: str | None = None,
    ) -> None:
        with self._state:
            if self._closed or key in self._tuning:
                return
            self._tuning.add(key)
        try:
            self._tuner_pool.submit(
                self._background_tune, key, profile, stale_entry, trace_id
            )
        except RuntimeError:  # pool already shut down
            with self._state:
                self._tuning.discard(key)
                self._state.notify_all()

    def _background_tune(
        self,
        key: ServeKey,
        profile: MachineProfile,
        stale_entry: CacheEntry,
        trace_id: str | None = None,
    ) -> None:
        # The registry serializes only its DB touches (lookup, store,
        # trial record) — never the DP tune itself, so other cold keys
        # keep resolving while this one tunes.
        try:
            from repro.store.registry import _default_tuner

            tune_key = self.cache.tune_key(key)

            def tuner():
                plan = _default_tuner(profile, tune_key, jobs=self.tune_jobs)
                # Swap provenance rides inside the plan JSON, so the
                # trial row the registry records carries it durably.
                swap_meta = {
                    "reason": "stale-while-tune",
                    "key": key.label(),
                    "fallback_generation": stale_entry.generation,
                    "stale_served_at_tune": stale_entry.serve_count(),
                }
                if trace_id is not None:
                    # Correlate the swap with the request that triggered
                    # it: the same id the client got in its ServeResult.
                    swap_meta["trace_id"] = trace_id
                plan.metadata["serve_swap"] = swap_meta
                return plan

            tune_span: Span | None = None
            if self.tracer.enabled:
                tune_span = self.tracer.start(
                    "serve.background_tune",
                    parent=None,
                    trace_id=trace_id,
                    key=key.label(),
                )
            started = self.clock.now()
            try:
                if tune_span is not None:
                    with self.tracer.activate(tune_span):
                        hit = self.registry.get_or_tune(
                            profile, tune_key, allow_nearest=False, tuner=tuner
                        )
                else:
                    hit = self.registry.get_or_tune(
                        profile, tune_key, allow_nearest=False, tuner=tuner
                    )
            finally:
                if tune_span is not None:
                    self.tracer.finish(tune_span)
            if hit.source == "tuned":
                self.telemetry.observe(
                    "background_tune", self.clock.now() - started
                )
            source = "swapped" if hit.source == "tuned" else hit.source
            self.cache.swap(key, hit.plan, source=source, plan_json=hit.plan_json)
        except Exception:
            # A failed background tune must not take the server down; the
            # fallback plan keeps serving and the next cold hit retries.
            self.telemetry.incr("tune_errors")
        finally:
            with self._state:
                self._tuning.discard(key)
                self._state.notify_all()
