"""C-native kernel backend: gcc-compiled hot loops loaded via ctypes.

The backend embeds a small C translation of the NumPy hot loops and
compiles it on first use with whatever ``gcc``/``cc`` the host
provides — no build-time dependency, no extension module.  The shared
object is cached under ``$REPRO_MG_KERNEL_CACHE`` (default
``~/.cache/repro-mg-kernels``) keyed on the source hash and compiler
version, so the compile cost is paid once per host, ever; ``warmup``
additionally runs every kernel once so not even the first ctypes
dispatch lands inside a timed trial.

Byte-identity contract: each C kernel evaluates the *same*
floating-point expression in the *same* order as the vectorized NumPy
code it replaces (see ``repro.relax.sor``, ``repro.grids.poisson``,
``repro.grids.transfer``), and the compile uses ``-ffp-contract=off``
so no fused multiply-adds change the rounding.  Within one red-black
colour every neighbour of an updated point has the other colour, so
the scalar loop order is exactly the vectorized update.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.grids.grid import coarsen_size, mesh_width, prepare_out
from repro.grids.poisson import rhs_scale
from repro.grids.transfer import interpolate_correction, restrict_full_weighting
from repro.kernels.base import LevelKernels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.operators.base import StencilOperator

__all__ = ["CNativeBackend", "kernel_cache_dir"]

#: Environment variable overriding where compiled kernels are cached.
CACHE_ENV = "REPRO_MG_KERNEL_CACHE"

C_SOURCE = r"""
/* Scalar translations of repro's NumPy multigrid hot loops.
 *
 * Every expression reproduces the NumPy evaluation order bit-for-bit
 * (compiled with -ffp-contract=off, so no FMA re-rounding).  2-D grids
 * are n x n row-major doubles; 3-D grids are n x n x n.
 */

#define U2(a, i, j) (a)[(i) * n + (j)]
#define U3(a, i, j, k) (a)[((i) * n + (j)) * n + (k)]

void rbsor2d_const(double *u, const double *b, long n, double h2,
                   double omega, long sweeps) {
    const double quarter_omega = 0.25 * omega;
    const double keep = 1.0 - omega;
    for (long s = 0; s < sweeps; s++) {
        for (long par = 0; par < 2; par++) {
            for (long i = 1; i < n - 1; i++) {
                for (long j = 1 + ((i + 1 + par) % 2); j < n - 1; j += 2) {
                    double st = U2(u, i - 1, j) + U2(u, i + 1, j);
                    st += U2(u, i, j - 1);
                    st += U2(u, i, j + 1);
                    st += h2 * U2(b, i, j);
                    U2(u, i, j) = U2(u, i, j) * keep + quarter_omega * st;
                }
            }
        }
    }
}

void residual2d_const(const double *u, const double *b, double *out,
                      long n, double inv_h2) {
    for (long i = 1; i < n - 1; i++) {
        for (long j = 1; j < n - 1; j++) {
            double acc = U2(u, i, j) * -4.0;
            acc += U2(u, i - 1, j);
            acc += U2(u, i + 1, j);
            acc += U2(u, i, j - 1);
            acc += U2(u, i, j + 1);
            acc *= inv_h2;
            acc += U2(b, i, j);
            U2(out, i, j) = acc;
        }
    }
}

void rbsor2d_stencil(double *u, const double *b, const double *cn,
                     const double *cs, const double *cw, const double *ce,
                     const double *cd, long n, double omega, long sweeps) {
    const double keep = 1.0 - omega;
    for (long s = 0; s < sweeps; s++) {
        for (long par = 0; par < 2; par++) {
            for (long i = 1; i < n - 1; i++) {
                for (long j = 1 + ((i + 1 + par) % 2); j < n - 1; j += 2) {
                    double gs = U2(cn, i, j) * U2(u, i - 1, j);
                    gs += U2(cs, i, j) * U2(u, i + 1, j);
                    gs += U2(cw, i, j) * U2(u, i, j - 1);
                    gs += U2(ce, i, j) * U2(u, i, j + 1);
                    gs += U2(b, i, j);
                    gs /= U2(cd, i, j);
                    U2(u, i, j) = U2(u, i, j) * keep + omega * gs;
                }
            }
        }
    }
}

void residual2d_stencil(const double *u, const double *b, const double *cn,
                        const double *cs, const double *cw, const double *ce,
                        const double *cd, double *out, long n) {
    for (long i = 1; i < n - 1; i++) {
        for (long j = 1; j < n - 1; j++) {
            double acc = U2(u, i, j) * (-U2(cd, i, j));
            acc += U2(cn, i, j) * U2(u, i - 1, j);
            acc += U2(cs, i, j) * U2(u, i + 1, j);
            acc += U2(cw, i, j) * U2(u, i, j - 1);
            acc += U2(ce, i, j) * U2(u, i, j + 1);
            acc += U2(b, i, j);
            U2(out, i, j) = acc;
        }
    }
}

void restrict2d_fw(const double *fine, double *coarse, long nf, long nc) {
    for (long ci = 1; ci < nc - 1; ci++) {
        for (long cj = 1; cj < nc - 1; cj++) {
            long fi = 2 * ci, fj = 2 * cj;
            double acc = fine[(fi - 1) * nf + fj] + fine[(fi + 1) * nf + fj];
            acc += fine[fi * nf + fj - 1];
            acc += fine[fi * nf + fj + 1];
            acc *= 2.0;
            acc += fine[(fi - 1) * nf + fj - 1];
            acc += fine[(fi - 1) * nf + fj + 1];
            acc += fine[(fi + 1) * nf + fj - 1];
            acc += fine[(fi + 1) * nf + fj + 1];
            acc += 4.0 * fine[fi * nf + fj];
            acc *= 1.0 / 16.0;
            coarse[ci * nc + cj] = acc;
        }
    }
}

void interp2d_corr(double *u, const double *coarse, long nf, long nc) {
    for (long ci = 1; ci < nc - 1; ci++)
        for (long cj = 1; cj < nc - 1; cj++)
            u[2 * ci * nf + 2 * cj] += coarse[ci * nc + cj];
    for (long ci = 1; ci < nc - 1; ci++)
        for (long cj = 0; cj < nc - 1; cj++)
            u[2 * ci * nf + 2 * cj + 1] +=
                0.5 * (coarse[ci * nc + cj] + coarse[ci * nc + cj + 1]);
    for (long ci = 0; ci < nc - 1; ci++)
        for (long cj = 1; cj < nc - 1; cj++)
            u[(2 * ci + 1) * nf + 2 * cj] +=
                0.5 * (coarse[ci * nc + cj] + coarse[(ci + 1) * nc + cj]);
    for (long ci = 0; ci < nc - 1; ci++)
        for (long cj = 0; cj < nc - 1; cj++)
            u[(2 * ci + 1) * nf + 2 * cj + 1] +=
                0.25 * (((coarse[ci * nc + cj] + coarse[ci * nc + cj + 1])
                         + coarse[(ci + 1) * nc + cj])
                        + coarse[(ci + 1) * nc + cj + 1]);
}

void rbsor3d_axes(double *u, const double *b, long n, double c0, double c1,
                  double c2, double h2, double omega, long sweeps) {
    const double inv_diag = 1.0 / (2.0 * ((c0 + c1) + c2));
    const double keep = 1.0 - omega;
    for (long s = 0; s < sweeps; s++) {
        for (long par = 0; par < 2; par++) {
            for (long i = 1; i < n - 1; i++) {
                for (long j = 1; j < n - 1; j++) {
                    for (long k = 1 + ((i + j + par + 1) % 2); k < n - 1; k += 2) {
                        double gs = c0 * (U3(u, i - 1, j, k) + U3(u, i + 1, j, k));
                        gs += c1 * (U3(u, i, j - 1, k) + U3(u, i, j + 1, k));
                        gs += c2 * (U3(u, i, j, k - 1) + U3(u, i, j, k + 1));
                        gs += h2 * U3(b, i, j, k);
                        gs *= inv_diag;
                        U3(u, i, j, k) = U3(u, i, j, k) * keep + omega * gs;
                    }
                }
            }
        }
    }
}

void residual3d_axes(const double *u, const double *b, double *out, long n,
                     double c0, double c1, double c2, double inv_h2) {
    const double dc = -2.0 * ((c0 + c1) + c2);
    for (long i = 1; i < n - 1; i++) {
        for (long j = 1; j < n - 1; j++) {
            for (long k = 1; k < n - 1; k++) {
                double acc = U3(u, i, j, k) * dc;
                acc += c0 * U3(u, i - 1, j, k);
                acc += c0 * U3(u, i + 1, j, k);
                acc += c1 * U3(u, i, j - 1, k);
                acc += c1 * U3(u, i, j + 1, k);
                acc += c2 * U3(u, i, j, k - 1);
                acc += c2 * U3(u, i, j, k + 1);
                acc *= inv_h2;
                acc += U3(b, i, j, k);
                U3(out, i, j, k) = acc;
            }
        }
    }
}
"""

# Kernels receive raw data pointers (the Python wrappers validate dtype,
# contiguity, and shape first): ndpointer's per-call from_param checks
# would cost more than some of the kernels themselves.
_PTR = ctypes.c_void_p
_SIGNATURES: dict[str, list[Any]] = {
    "rbsor2d_const": [
        _PTR, _PTR, ctypes.c_long, ctypes.c_double, ctypes.c_double,
        ctypes.c_long,
    ],
    "residual2d_const": [_PTR, _PTR, _PTR, ctypes.c_long, ctypes.c_double],
    "rbsor2d_stencil": [
        _PTR, _PTR, _PTR, _PTR, _PTR, _PTR, _PTR, ctypes.c_long,
        ctypes.c_double, ctypes.c_long,
    ],
    "residual2d_stencil": [
        _PTR, _PTR, _PTR, _PTR, _PTR, _PTR, _PTR, _PTR, ctypes.c_long,
    ],
    "restrict2d_fw": [_PTR, _PTR, ctypes.c_long, ctypes.c_long],
    "interp2d_corr": [_PTR, _PTR, ctypes.c_long, ctypes.c_long],
    "rbsor3d_axes": [
        _PTR, _PTR, ctypes.c_long, ctypes.c_double, ctypes.c_double,
        ctypes.c_double, ctypes.c_double, ctypes.c_double, ctypes.c_long,
    ],
    "residual3d_axes": [
        _PTR, _PTR, _PTR, ctypes.c_long, ctypes.c_double, ctypes.c_double,
        ctypes.c_double, ctypes.c_double,
    ],
}

_F64 = np.dtype(np.float64)

_lock = threading.Lock()
_lib: ctypes.CDLL | None = None
_lib_error: str | None = None
_probed = False


def kernel_cache_dir() -> Path:
    """Where compiled kernel objects live (see :data:`CACHE_ENV`)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-mg-kernels"


def _compiler() -> str | None:
    return shutil.which("gcc") or shutil.which("cc")


def _compiler_version(cc: str) -> str:
    try:
        proc = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
        return proc.stdout.splitlines()[0].strip() if proc.stdout else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _build_library() -> ctypes.CDLL:
    """Compile (if not cached) and load the kernel shared object."""
    from repro.obs.runtime import get_tracer

    cc = _compiler()
    if cc is None:
        raise RuntimeError("no C compiler (gcc/cc) on PATH")
    version = _compiler_version(cc)
    key = hashlib.sha256(
        (C_SOURCE + "\n" + version).encode("utf-8")
    ).hexdigest()[:16]
    cache = kernel_cache_dir()
    so_path = cache / f"repro_mg_kernels_{key}.so"
    if not so_path.exists():
        cache.mkdir(parents=True, exist_ok=True)
        src_path = cache / f"repro_mg_kernels_{key}.c"
        src_path.write_text(C_SOURCE)
        tmp_path = cache / f".repro_mg_kernels_{key}.{os.getpid()}.so"
        cmd = [
            cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
            str(src_path), "-o", str(tmp_path),
        ]
        with get_tracer().span(
            "kernels.compile", backend="cnative", compiler=version, key=key
        ):
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
        if proc.returncode != 0:
            tmp_path.unlink(missing_ok=True)
            raise RuntimeError(
                f"kernel compile failed ({' '.join(cmd)}): {proc.stderr.strip()}"
            )
        # Atomic publish: concurrent builders race benignly to the same path.
        os.replace(tmp_path, so_path)
    lib = ctypes.CDLL(str(so_path))
    for fname, argtypes in _SIGNATURES.items():
        fn = getattr(lib, fname)
        fn.argtypes = argtypes
        fn.restype = None
    return lib


def _load_library() -> ctypes.CDLL | None:
    """Build/load once per process; a failure is cached as unavailable."""
    global _lib, _lib_error, _probed
    with _lock:
        if not _probed:
            _probed = True
            try:
                _lib = _build_library()
            except (RuntimeError, OSError) as exc:
                _lib_error = str(exc)
        return _lib


# Hot-path guards: called before every kernel dispatch, so they check the
# cheap exact-type fast path first (subclasses fall back to NumPy).
def _square(a: np.ndarray, n: int) -> bool:
    return (
        type(a) is np.ndarray
        and a.shape == (n, n)
        and a.dtype == _F64
        and a.flags.c_contiguous
    )


def _cube(a: np.ndarray, n: int) -> bool:
    return (
        type(a) is np.ndarray
        and a.shape == (n, n, n)
        and a.dtype == _F64
        and a.flags.c_contiguous
    )


def _bind_const2d(lib: ctypes.CDLL, op: "StencilOperator") -> LevelKernels:
    n = op.n
    h = mesh_width(n)
    h2 = h * h
    inv_h2 = rhs_scale(n)
    f_sor = lib.rbsor2d_const
    f_res = lib.residual2d_const

    def sor_sweeps(u, b, omega, sweeps=1):
        if sweeps < 0 or not (_square(u, n) and _square(b, n)):
            return op.sor_sweeps(u, b, omega, sweeps)
        f_sor(u.ctypes.data, b.ctypes.data, n, h2, omega, sweeps)
        return u

    def jacobi_sweeps(u, b, omega, sweeps):
        if sweeps < 0 or not (_square(u, n) and _square(b, n)):
            return op.jacobi_sweeps(u, b, omega, sweeps)
        scratch = np.zeros_like(u)
        for _ in range(sweeps):
            f_res(u.ctypes.data, b.ctypes.data, scratch.ctypes.data, n, inv_h2)
            u[1:-1, 1:-1] += (omega * h * h * 0.25) * scratch[1:-1, 1:-1]
        return u

    def residual(u, b, out=None):
        if not (_square(u, n) and _square(b, n)):
            return op.residual(u, b, out=out)
        res = prepare_out(out, u.shape)
        if not _square(res, n):
            return op.residual(u, b, out=out)
        f_res(u.ctypes.data, b.ctypes.data, res.ctypes.data, n, inv_h2)
        return res

    return LevelKernels(
        backend="cnative",
        sor_sweeps=sor_sweeps,
        jacobi_sweeps=jacobi_sweeps,
        residual=residual,
        restrict=_restrict2d(lib),
        interpolate_correction=_interp2d(lib),
    )


def _bind_stencil2d(lib: ctypes.CDLL, op: Any) -> LevelKernels:
    n = op.n
    north, south = op.north, op.south
    west, east, diag = op.west, op.east, op.diag
    weights = (north, south, west, east, diag)
    weights_ok = all(_square(w, n) for w in weights)
    # The weight arrays are fixed per operator instance; hoist their
    # pointers out of the per-sweep path (the closure keeps them alive).
    if weights_ok:
        pn, ps, pw, pe, pd = (w.ctypes.data for w in weights)
    f_sor = lib.rbsor2d_stencil
    f_res = lib.residual2d_stencil

    def sor_sweeps(u, b, omega, sweeps=1):
        if sweeps < 0 or not weights_ok or not (_square(u, n) and _square(b, n)):
            return op.sor_sweeps(u, b, omega, sweeps)
        f_sor(u.ctypes.data, b.ctypes.data, pn, ps, pw, pe, pd, n, omega, sweeps)
        return u

    def jacobi_sweeps(u, b, omega, sweeps):
        if sweeps < 0 or not weights_ok or not (_square(u, n) and _square(b, n)):
            return op.jacobi_sweeps(u, b, omega, sweeps)
        scratch = np.zeros_like(u)
        for _ in range(sweeps):
            f_res(u.ctypes.data, b.ctypes.data, pn, ps, pw, pe, pd,
                  scratch.ctypes.data, n)
            u[1:-1, 1:-1] += omega * scratch[1:-1, 1:-1] / diag[1:-1, 1:-1]
        return u

    def residual(u, b, out=None):
        if not weights_ok or not (_square(u, n) and _square(b, n)):
            return op.residual(u, b, out=out)
        res = prepare_out(out, u.shape)
        if not _square(res, n):
            return op.residual(u, b, out=out)
        f_res(u.ctypes.data, b.ctypes.data, pn, ps, pw, pe, pd,
              res.ctypes.data, n)
        return res

    return LevelKernels(
        backend="cnative",
        sor_sweeps=sor_sweeps,
        jacobi_sweeps=jacobi_sweeps,
        residual=residual,
        restrict=_restrict2d(lib),
        interpolate_correction=_interp2d(lib),
    )


def _bind_axes3d(lib: ctypes.CDLL, op: Any) -> LevelKernels:
    n = op.n
    c0, c1, c2 = (float(c) for c in op.coeffs)
    h = mesh_width(n)
    h2 = h * h
    inv_h2 = rhs_scale(n)
    f_sor = lib.rbsor3d_axes
    f_res = lib.residual3d_axes

    def sor_sweeps(u, b, omega, sweeps=1):
        if sweeps < 0 or not (_cube(u, n) and _cube(b, n)):
            return op.sor_sweeps(u, b, omega, sweeps)
        f_sor(u.ctypes.data, b.ctypes.data, n, c0, c1, c2, h2, omega, sweeps)
        return u

    def jacobi_sweeps(u, b, omega, sweeps):
        if sweeps < 0 or not (_cube(u, n) and _cube(b, n)):
            return op.jacobi_sweeps(u, b, omega, sweeps)
        factor = omega * h * h / (2.0 * float(sum(op.coeffs)))
        scratch = np.zeros_like(u)
        inner = (slice(1, -1),) * 3
        for _ in range(sweeps):
            f_res(u.ctypes.data, b.ctypes.data, scratch.ctypes.data,
                  n, c0, c1, c2, inv_h2)
            u[inner] += factor * scratch[inner]
        return u

    def residual(u, b, out=None):
        if not (_cube(u, n) and _cube(b, n)):
            return op.residual(u, b, out=out)
        res = prepare_out(out, u.shape)
        if not _cube(res, n):
            return op.residual(u, b, out=out)
        f_res(u.ctypes.data, b.ctypes.data, res.ctypes.data,
              n, c0, c1, c2, inv_h2)
        return res

    # The separable 3-D transfers are cheap axis passes; the NumPy
    # implementations stay (byte-identical by construction).
    return LevelKernels(
        backend="cnative",
        sor_sweeps=sor_sweeps,
        jacobi_sweeps=jacobi_sweeps,
        residual=residual,
        restrict=restrict_full_weighting,
        interpolate_correction=interpolate_correction,
    )


def _restrict2d(lib: ctypes.CDLL):
    f_restrict = lib.restrict2d_fw

    def restrict(fine, out=None):
        nf = fine.shape[0] if isinstance(fine, np.ndarray) and fine.ndim == 2 else 0
        if nf < 5 or not _square(fine, nf):
            return restrict_full_weighting(fine, out=out)
        nc = coarsen_size(nf)
        res = prepare_out(out, (nc, nc))
        if not _square(res, nc):
            return restrict_full_weighting(fine, out=out)
        f_restrict(fine.ctypes.data, res.ctypes.data, nf, nc)
        return res

    return restrict


def _interp2d(lib: ctypes.CDLL):
    f_interp = lib.interp2d_corr

    def interpolate(u, coarse):
        nf = u.shape[0] if isinstance(u, np.ndarray) and u.ndim == 2 else 0
        if (
            nf < 5
            or not _square(u, nf)
            or not _square(coarse, coarsen_size(nf))
        ):
            return interpolate_correction(u, coarse)
        f_interp(u.ctypes.data, coarse.ctypes.data, nf, coarsen_size(nf))
        return u

    return interpolate


class CNativeBackend:
    """gcc-compiled scalar kernels behind the :class:`KernelBackend` protocol."""

    name = "cnative"

    def __init__(self) -> None:
        self._warmed = False

    def available(self) -> bool:
        return _load_library() is not None

    def supports(self, op: "StencilOperator") -> bool:
        from repro.operators.base import FivePointOperator
        from repro.operators.poisson import ConstCoeffPoisson
        from repro.operators.poisson3d import AxisStencilOperator

        return isinstance(
            op, (ConstCoeffPoisson, FivePointOperator, AxisStencilOperator)
        )

    def bind(self, op: "StencilOperator") -> LevelKernels | None:
        from repro.operators.base import FivePointOperator
        from repro.operators.poisson import ConstCoeffPoisson
        from repro.operators.poisson3d import AxisStencilOperator

        lib = _load_library()
        if lib is None:
            return None
        if isinstance(op, ConstCoeffPoisson):
            return _bind_const2d(lib, op)
        if isinstance(op, FivePointOperator):
            return _bind_stencil2d(lib, op)
        if isinstance(op, AxisStencilOperator):
            return _bind_axes3d(lib, op)
        return None

    def warmup(self) -> None:
        """Compile the library and run every kernel once (idempotent)."""
        if self._warmed:
            return
        lib = _load_library()
        if lib is None:
            return
        n = 5
        u2 = np.zeros((n, n))
        b2 = np.zeros((n, n))
        w = np.ones((n, n))
        out2 = np.zeros((n, n))
        coarse = np.zeros((3, 3))
        pu, pb, pw, po = (a.ctypes.data for a in (u2, b2, w, out2))
        pc = coarse.ctypes.data
        lib.rbsor2d_const(pu, pb, n, 1.0, 1.0, 1)
        lib.residual2d_const(pu, pb, po, n, 1.0)
        lib.rbsor2d_stencil(pu, pb, pw, pw, pw, pw, pw, n, 1.0, 1)
        lib.residual2d_stencil(pu, pb, pw, pw, pw, pw, pw, po, n)
        lib.restrict2d_fw(pu, pc, n, 3)
        lib.interp2d_corr(pu, pc, n, 3)
        u3 = np.zeros((n, n, n))
        b3 = np.zeros((n, n, n))
        out3 = np.zeros((n, n, n))
        lib.rbsor3d_axes(u3.ctypes.data, b3.ctypes.data, n,
                         1.0, 1.0, 1.0, 1.0, 1.0, 1)
        lib.residual3d_axes(u3.ctypes.data, b3.ctypes.data, out3.ctypes.data,
                            n, 1.0, 1.0, 1.0, 1.0)
        self._warmed = True

    def provenance(self) -> dict[str, Any]:
        available = self.available()
        if available:
            cc = _compiler()
            detail = _compiler_version(cc) if cc else "unknown"
        else:
            detail = f"unavailable: {_lib_error or 'no C compiler'}"
        return {"backend": self.name, "available": available, "detail": detail}
