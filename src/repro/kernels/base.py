"""The kernel backend protocol: pluggable hot-loop implementations.

The numerics of the reproduction live in a handful of hot loops —
red-black SOR / weighted-Jacobi sweeps, residual evaluation, and the
full-weighting / linear-interpolation transfers.  A *kernel backend*
provides alternative implementations of those loops for a
:class:`~repro.operators.base.StencilOperator`; the tuner treats the
choice of backend as a tuning dimension (see ``repro.tuner``), priced
per level through :class:`~repro.machines.profile.MachineProfile`.

Backends are **byte-identical by contract**: every entry point must
produce bit-for-bit the same float64 arrays as the NumPy reference
implementation (same floating-point expression, same evaluation order,
no FMA contraction).  The identity test suite (``tests/kernels``)
enforces the contract, so a tuned plan's iteration counts — and
therefore its accuracy guarantees — carry over unchanged whichever
backend executes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.operators.base import StencilOperator

__all__ = ["KernelBackend", "LevelKernels"]


@dataclass(frozen=True)
class LevelKernels:
    """Kernel entry points bound to one operator instance (one level).

    The callables mirror the signatures the plan executor already uses:

    * ``sor_sweeps(u, b, omega, sweeps)`` — in-place red-black SOR;
    * ``jacobi_sweeps(u, b, omega, sweeps)`` — in-place weighted Jacobi;
    * ``residual(u, b, out=None)`` — ``b - A u`` with a zeroed boundary;
    * ``restrict(fine, out=None)`` — full-weighting restriction;
    * ``interpolate_correction(u, coarse)`` — add the interpolated
      coarse correction to ``u`` in place.
    """

    backend: str
    sor_sweeps: Callable[..., np.ndarray]
    jacobi_sweeps: Callable[..., np.ndarray]
    residual: Callable[..., np.ndarray]
    restrict: Callable[..., np.ndarray]
    interpolate_correction: Callable[..., np.ndarray]


@runtime_checkable
class KernelBackend(Protocol):
    """One pluggable implementation family of the multigrid hot loops.

    ``supports`` is a static capability check (no compilation, no heavy
    imports); ``available`` probes whether the backend can actually run
    here (optional dependency importable, toolchain present) and caches
    the answer; ``bind`` returns the kernels for a concrete operator or
    ``None`` when the family is unsupported; ``warmup`` performs the
    one-time compile/JIT so that cost never lands inside a timed trial.
    """

    name: str

    def available(self) -> bool:
        """Can this backend execute on this host?  Cached, cheap."""
        ...

    def supports(self, op: "StencilOperator") -> bool:
        """Does this backend implement kernels for ``op``'s family?

        Must be answerable without compiling anything — the DP tuners
        call it while pricing plans for machines they are not running
        on.
        """
        ...

    def bind(self, op: "StencilOperator") -> LevelKernels | None:
        """Kernels for ``op``, or ``None`` when unsupported/unavailable."""
        ...

    def warmup(self) -> None:
        """One-time compile/JIT of every kernel (idempotent)."""
        ...

    def provenance(self) -> dict[str, Any]:
        """Structured identity for bench JSON: name, version, status."""
        ...
