"""Numba JIT kernel backend (optional dependency, graceful fallback).

``numba`` is deliberately *not* a package dependency: this module is
the only place it may be imported (enforced by a ruff banned-API rule),
the import happens lazily inside functions, and every entry point
degrades to "unavailable" when the import fails — the backend registry
then simply never selects it.  With numba present, ``warmup`` compiles
every kernel once on tiny grids (honouring ``NUMBA_CACHE_DIR``, which
CI caches keyed on the numba version and this file's hash), so JIT
cost never lands inside a timed trial.

The kernel bodies are scalar loops that evaluate exactly the same
floating-point expressions in exactly the same order as the NumPy
reference code (and as the C backend); they are compiled with
``fastmath=False`` so the byte-identity contract holds.
"""

from __future__ import annotations

import importlib.util
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.grids.grid import coarsen_size, mesh_width, prepare_out
from repro.grids.poisson import rhs_scale
from repro.grids.transfer import interpolate_correction, restrict_full_weighting
from repro.kernels.base import LevelKernels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.operators.base import StencilOperator

__all__ = ["NumbaBackend"]


# -- kernel bodies (plain Python; JIT-compiled lazily) -------------------


def _rbsor2d_const(u, b, h2, omega, sweeps):
    n = u.shape[0]
    quarter_omega = 0.25 * omega
    keep = 1.0 - omega
    for _ in range(sweeps):
        for par in range(2):
            for i in range(1, n - 1):
                for j in range(1 + ((i + 1 + par) % 2), n - 1, 2):
                    st = u[i - 1, j] + u[i + 1, j]
                    st += u[i, j - 1]
                    st += u[i, j + 1]
                    st += h2 * b[i, j]
                    u[i, j] = u[i, j] * keep + quarter_omega * st


def _residual2d_const(u, b, out, inv_h2):
    n = u.shape[0]
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            acc = u[i, j] * -4.0
            acc += u[i - 1, j]
            acc += u[i + 1, j]
            acc += u[i, j - 1]
            acc += u[i, j + 1]
            acc *= inv_h2
            acc += b[i, j]
            out[i, j] = acc


def _rbsor2d_stencil(u, b, cn, cs, cw, ce, cd, omega, sweeps):
    n = u.shape[0]
    keep = 1.0 - omega
    for _ in range(sweeps):
        for par in range(2):
            for i in range(1, n - 1):
                for j in range(1 + ((i + 1 + par) % 2), n - 1, 2):
                    gs = cn[i, j] * u[i - 1, j]
                    gs += cs[i, j] * u[i + 1, j]
                    gs += cw[i, j] * u[i, j - 1]
                    gs += ce[i, j] * u[i, j + 1]
                    gs += b[i, j]
                    gs /= cd[i, j]
                    u[i, j] = u[i, j] * keep + omega * gs


def _residual2d_stencil(u, b, cn, cs, cw, ce, cd, out):
    n = u.shape[0]
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            acc = u[i, j] * (-cd[i, j])
            acc += cn[i, j] * u[i - 1, j]
            acc += cs[i, j] * u[i + 1, j]
            acc += cw[i, j] * u[i, j - 1]
            acc += ce[i, j] * u[i, j + 1]
            acc += b[i, j]
            out[i, j] = acc


def _restrict2d_fw(fine, coarse):
    nc = coarse.shape[0]
    for ci in range(1, nc - 1):
        for cj in range(1, nc - 1):
            fi = 2 * ci
            fj = 2 * cj
            acc = fine[fi - 1, fj] + fine[fi + 1, fj]
            acc += fine[fi, fj - 1]
            acc += fine[fi, fj + 1]
            acc *= 2.0
            acc += fine[fi - 1, fj - 1]
            acc += fine[fi - 1, fj + 1]
            acc += fine[fi + 1, fj - 1]
            acc += fine[fi + 1, fj + 1]
            acc += 4.0 * fine[fi, fj]
            acc *= 1.0 / 16.0
            coarse[ci, cj] = acc


def _interp2d_corr(u, coarse):
    nc = coarse.shape[0]
    for ci in range(1, nc - 1):
        for cj in range(1, nc - 1):
            u[2 * ci, 2 * cj] += coarse[ci, cj]
    for ci in range(1, nc - 1):
        for cj in range(nc - 1):
            u[2 * ci, 2 * cj + 1] += 0.5 * (coarse[ci, cj] + coarse[ci, cj + 1])
    for ci in range(nc - 1):
        for cj in range(1, nc - 1):
            u[2 * ci + 1, 2 * cj] += 0.5 * (coarse[ci, cj] + coarse[ci + 1, cj])
    for ci in range(nc - 1):
        for cj in range(nc - 1):
            u[2 * ci + 1, 2 * cj + 1] += 0.25 * (
                ((coarse[ci, cj] + coarse[ci, cj + 1]) + coarse[ci + 1, cj])
                + coarse[ci + 1, cj + 1]
            )


def _rbsor3d_axes(u, b, c0, c1, c2, h2, omega, sweeps):
    n = u.shape[0]
    inv_diag = 1.0 / (2.0 * ((c0 + c1) + c2))
    keep = 1.0 - omega
    for _ in range(sweeps):
        for par in range(2):
            for i in range(1, n - 1):
                for j in range(1, n - 1):
                    for k in range(1 + ((i + j + par + 1) % 2), n - 1, 2):
                        gs = c0 * (u[i - 1, j, k] + u[i + 1, j, k])
                        gs += c1 * (u[i, j - 1, k] + u[i, j + 1, k])
                        gs += c2 * (u[i, j, k - 1] + u[i, j, k + 1])
                        gs += h2 * b[i, j, k]
                        gs *= inv_diag
                        u[i, j, k] = u[i, j, k] * keep + omega * gs


def _residual3d_axes(u, b, out, c0, c1, c2, inv_h2):
    n = u.shape[0]
    dc = -2.0 * ((c0 + c1) + c2)
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            for k in range(1, n - 1):
                acc = u[i, j, k] * dc
                acc += c0 * u[i - 1, j, k]
                acc += c0 * u[i + 1, j, k]
                acc += c1 * u[i, j - 1, k]
                acc += c1 * u[i, j + 1, k]
                acc += c2 * u[i, j, k - 1]
                acc += c2 * u[i, j, k + 1]
                acc *= inv_h2
                acc += b[i, j, k]
                out[i, j, k] = acc


_KERNEL_BODIES: dict[str, Callable[..., Any]] = {
    "rbsor2d_const": _rbsor2d_const,
    "residual2d_const": _residual2d_const,
    "rbsor2d_stencil": _rbsor2d_stencil,
    "residual2d_stencil": _residual2d_stencil,
    "restrict2d_fw": _restrict2d_fw,
    "interp2d_corr": _interp2d_corr,
    "rbsor3d_axes": _rbsor3d_axes,
    "residual3d_axes": _residual3d_axes,
}

_compiled: dict[str, Callable[..., Any]] | None = None
_compile_error: str | None = None


def _numba_present() -> bool:
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):
        return False


def _kernels() -> dict[str, Callable[..., Any]] | None:
    """JIT-wrap the kernel bodies once; None when numba is unusable."""
    global _compiled, _compile_error
    if _compiled is not None or _compile_error is not None:
        return _compiled
    if not _numba_present():
        _compile_error = "numba is not installed"
        return None
    try:
        import numba

        jit = numba.njit(cache=True, fastmath=False)
        _compiled = {name: jit(fn) for name, fn in _KERNEL_BODIES.items()}
    except Exception as exc:  # pragma: no cover - depends on numba install
        _compile_error = f"{type(exc).__name__}: {exc}"
        return None
    return _compiled


def _usable(*arrays: np.ndarray) -> bool:
    return all(
        isinstance(a, np.ndarray)
        and a.dtype == np.float64
        and a.flags.c_contiguous
        for a in arrays
    )


def _bind_const2d(k: dict[str, Callable[..., Any]], op: Any) -> LevelKernels:
    n = op.n

    def sor_sweeps(u, b, omega, sweeps=1):
        if sweeps < 0 or u.shape != (n, n) or not _usable(u, b):
            return op.sor_sweeps(u, b, omega, sweeps)
        h = mesh_width(n)
        k["rbsor2d_const"](u, b, h * h, omega, sweeps)
        return u

    def jacobi_sweeps(u, b, omega, sweeps):
        if sweeps < 0 or u.shape != (n, n) or not _usable(u, b):
            return op.jacobi_sweeps(u, b, omega, sweeps)
        h = mesh_width(n)
        scratch = np.zeros_like(u)
        for _ in range(sweeps):
            k["residual2d_const"](u, b, scratch, rhs_scale(n))
            u[1:-1, 1:-1] += (omega * h * h * 0.25) * scratch[1:-1, 1:-1]
        return u

    def residual(u, b, out=None):
        if u.shape != (n, n) or not _usable(u, b):
            return op.residual(u, b, out=out)
        res = prepare_out(out, u.shape)
        if not _usable(res):
            return op.residual(u, b, out=out)
        k["residual2d_const"](u, b, res, rhs_scale(n))
        return res

    return LevelKernels(
        backend="numba",
        sor_sweeps=sor_sweeps,
        jacobi_sweeps=jacobi_sweeps,
        residual=residual,
        restrict=_restrict2d(k),
        interpolate_correction=_interp2d(k),
    )


def _bind_stencil2d(k: dict[str, Callable[..., Any]], op: Any) -> LevelKernels:
    n = op.n
    north, south = op.north, op.south
    west, east, diag = op.west, op.east, op.diag
    weights_ok = _usable(north, south, west, east, diag)

    def sor_sweeps(u, b, omega, sweeps=1):
        if sweeps < 0 or not weights_ok or u.shape != (n, n) or not _usable(u, b):
            return op.sor_sweeps(u, b, omega, sweeps)
        k["rbsor2d_stencil"](u, b, north, south, west, east, diag, omega, sweeps)
        return u

    def jacobi_sweeps(u, b, omega, sweeps):
        if sweeps < 0 or not weights_ok or u.shape != (n, n) or not _usable(u, b):
            return op.jacobi_sweeps(u, b, omega, sweeps)
        scratch = np.zeros_like(u)
        for _ in range(sweeps):
            k["residual2d_stencil"](u, b, north, south, west, east, diag, scratch)
            u[1:-1, 1:-1] += omega * scratch[1:-1, 1:-1] / diag[1:-1, 1:-1]
        return u

    def residual(u, b, out=None):
        if not weights_ok or u.shape != (n, n) or not _usable(u, b):
            return op.residual(u, b, out=out)
        res = prepare_out(out, u.shape)
        if not _usable(res):
            return op.residual(u, b, out=out)
        k["residual2d_stencil"](u, b, north, south, west, east, diag, res)
        return res

    return LevelKernels(
        backend="numba",
        sor_sweeps=sor_sweeps,
        jacobi_sweeps=jacobi_sweeps,
        residual=residual,
        restrict=_restrict2d(k),
        interpolate_correction=_interp2d(k),
    )


def _bind_axes3d(k: dict[str, Callable[..., Any]], op: Any) -> LevelKernels:
    n = op.n
    c0, c1, c2 = (float(c) for c in op.coeffs)

    def sor_sweeps(u, b, omega, sweeps=1):
        if sweeps < 0 or u.shape != (n, n, n) or not _usable(u, b):
            return op.sor_sweeps(u, b, omega, sweeps)
        h = mesh_width(n)
        k["rbsor3d_axes"](u, b, c0, c1, c2, h * h, omega, sweeps)
        return u

    def jacobi_sweeps(u, b, omega, sweeps):
        if sweeps < 0 or u.shape != (n, n, n) or not _usable(u, b):
            return op.jacobi_sweeps(u, b, omega, sweeps)
        h = mesh_width(n)
        factor = omega * h * h / (2.0 * float(sum(op.coeffs)))
        scratch = np.zeros_like(u)
        inner = (slice(1, -1),) * 3
        for _ in range(sweeps):
            k["residual3d_axes"](u, b, scratch, c0, c1, c2, rhs_scale(n))
            u[inner] += factor * scratch[inner]
        return u

    def residual(u, b, out=None):
        if u.shape != (n, n, n) or not _usable(u, b):
            return op.residual(u, b, out=out)
        res = prepare_out(out, u.shape)
        if not _usable(res):
            return op.residual(u, b, out=out)
        k["residual3d_axes"](u, b, res, c0, c1, c2, rhs_scale(n))
        return res

    return LevelKernels(
        backend="numba",
        sor_sweeps=sor_sweeps,
        jacobi_sweeps=jacobi_sweeps,
        residual=residual,
        restrict=restrict_full_weighting,
        interpolate_correction=interpolate_correction,
    )


def _restrict2d(k: dict[str, Callable[..., Any]]):
    def restrict(fine, out=None):
        if not (
            isinstance(fine, np.ndarray)
            and fine.ndim == 2
            and fine.shape[0] >= 5
            and _usable(fine)
        ):
            return restrict_full_weighting(fine, out=out)
        nc = coarsen_size(fine.shape[0])
        res = prepare_out(out, (nc, nc))
        if not _usable(res):
            return restrict_full_weighting(fine, out=out)
        k["restrict2d_fw"](fine, res)
        return res

    return restrict


def _interp2d(k: dict[str, Callable[..., Any]]):
    def interpolate(u, coarse):
        if not (
            isinstance(u, np.ndarray)
            and u.ndim == 2
            and u.shape[0] >= 5
            and _usable(u, coarse)
            and coarse.shape == (coarsen_size(u.shape[0]),) * 2
        ):
            return interpolate_correction(u, coarse)
        k["interp2d_corr"](u, coarse)
        return u

    return interpolate


class NumbaBackend:
    """Numba-JIT kernels behind the :class:`KernelBackend` protocol."""

    name = "numba"

    def __init__(self) -> None:
        self._warmed = False

    def available(self) -> bool:
        return _kernels() is not None

    def supports(self, op: "StencilOperator") -> bool:
        from repro.operators.base import FivePointOperator
        from repro.operators.poisson import ConstCoeffPoisson
        from repro.operators.poisson3d import AxisStencilOperator

        return isinstance(
            op, (ConstCoeffPoisson, FivePointOperator, AxisStencilOperator)
        )

    def bind(self, op: "StencilOperator") -> LevelKernels | None:
        from repro.operators.base import FivePointOperator
        from repro.operators.poisson import ConstCoeffPoisson
        from repro.operators.poisson3d import AxisStencilOperator

        k = _kernels()
        if k is None:
            return None
        if isinstance(op, ConstCoeffPoisson):
            return _bind_const2d(k, op)
        if isinstance(op, FivePointOperator):
            return _bind_stencil2d(k, op)
        if isinstance(op, AxisStencilOperator):
            return _bind_axes3d(k, op)
        return None

    def warmup(self) -> None:
        """Force the JIT compile of every kernel on tiny grids (idempotent)."""
        if self._warmed:
            return
        k = _kernels()
        if k is None:
            return
        from repro.obs.runtime import get_tracer

        with get_tracer().span(
            "kernels.warmup", backend="numba", kernels=len(k)
        ):
            self._do_warmup(k)
        self._warmed = True

    def _do_warmup(self, k: dict[str, Callable[..., Any]]) -> None:
        n = 5
        u2, b2, out2 = np.zeros((n, n)), np.zeros((n, n)), np.zeros((n, n))
        w = np.ones((n, n))
        coarse = np.zeros((3, 3))
        k["rbsor2d_const"](u2, b2, 1.0, 1.0, 1)
        k["residual2d_const"](u2, b2, out2, 1.0)
        k["rbsor2d_stencil"](u2, b2, w, w, w, w, w, 1.0, 1)
        k["residual2d_stencil"](u2, b2, w, w, w, w, w, out2)
        k["restrict2d_fw"](u2, coarse)
        k["interp2d_corr"](u2, coarse)
        u3, b3, out3 = np.zeros((n,) * 3), np.zeros((n,) * 3), np.zeros((n,) * 3)
        k["rbsor3d_axes"](u3, b3, 1.0, 1.0, 1.0, 1.0, 1.0, 1)
        k["residual3d_axes"](u3, b3, out3, 1.0, 1.0, 1.0, 1.0)

    def provenance(self) -> dict[str, Any]:
        available = self.available()
        if available:
            import numba

            detail = f"numba {numba.__version__}"
        else:
            detail = f"unavailable: {_compile_error or 'numba is not installed'}"
        return {"backend": self.name, "available": available, "detail": detail}
