"""The NumPy reference backend: today's vectorized kernels, unchanged.

This backend *is* the ground truth the byte-identity contract is
defined against — ``bind`` simply returns the operator's own methods
and the shared transfer functions, so executing a plan through it is
bit-for-bit the same computation as before the backend layer existed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.grids.transfer import interpolate_correction, restrict_full_weighting
from repro.kernels.base import LevelKernels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.operators.base import StencilOperator

__all__ = ["NumpyBackend"]


class NumpyBackend:
    """Reference kernels: delegate to the operator and grid modules."""

    name = "numpy"

    def available(self) -> bool:
        return True

    def supports(self, op: "StencilOperator") -> bool:
        return True

    def bind(self, op: "StencilOperator") -> LevelKernels:
        return LevelKernels(
            backend=self.name,
            sor_sweeps=op.sor_sweeps,
            jacobi_sweeps=op.jacobi_sweeps,
            residual=op.residual,
            restrict=restrict_full_weighting,
            interpolate_correction=interpolate_correction,
        )

    def warmup(self) -> None:  # nothing to compile
        return None

    def provenance(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "available": True,
            "detail": f"numpy {np.__version__}",
        }
