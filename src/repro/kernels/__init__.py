"""Pluggable kernel backends: the hot loops as a tuning dimension.

The registry exposes the known backends by name:

* ``numpy`` — the vectorized reference implementation (always
  available, always byte-identical to itself: it *is* the ground
  truth);
* ``cnative`` — C kernels compiled on demand by the host's ``gcc``
  and loaded via ctypes;
* ``numba`` — JIT kernels behind an optional ``numba`` install.

``resolve_backend("auto")`` picks the fastest available backend
(``numba`` > ``cnative`` > ``numpy``); tuners, the store, and the
serve layer all accept ``"auto"`` and persist the resolved name.
Every non-numpy backend is byte-identical to numpy by contract (see
:mod:`repro.kernels.base`), so backend choice changes wall-clock only,
never numerics.
"""

from __future__ import annotations

from typing import Any

from repro.kernels.base import KernelBackend, LevelKernels
from repro.kernels.cnative import CNativeBackend, kernel_cache_dir
from repro.kernels.numba_backend import NumbaBackend
from repro.kernels.numpy_backend import NumpyBackend

__all__ = [
    "BACKEND_PRIORITY",
    "KernelBackend",
    "LevelKernels",
    "available_backends",
    "backend_names",
    "backend_provenance",
    "get_backend",
    "kernel_cache_dir",
    "resolve_backend",
]

#: "auto" resolution order: fastest first, numpy as the always-on floor.
BACKEND_PRIORITY: tuple[str, ...] = ("numba", "cnative", "numpy")

_backends: dict[str, KernelBackend] = {}


def get_backend(name: str) -> KernelBackend:
    """The (singleton) backend registered under ``name``.

    Raises ``ValueError`` for unknown names — backend names are
    keyfields in the tuning store, so typos must fail loudly.
    """
    if name not in BACKEND_PRIORITY:
        raise ValueError(
            f"unknown kernel backend {name!r}; known: "
            f"{', '.join(sorted(BACKEND_PRIORITY))} (or 'auto')"
        )
    backend = _backends.get(name)
    if backend is None:
        factory = {
            "numpy": NumpyBackend,
            "cnative": CNativeBackend,
            "numba": NumbaBackend,
        }[name]
        backend = _backends[name] = factory()
    return backend


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, in priority order."""
    return BACKEND_PRIORITY


def available_backends() -> tuple[str, ...]:
    """Backends that can actually execute on this host, priority order."""
    return tuple(
        name for name in BACKEND_PRIORITY if get_backend(name).available()
    )


def resolve_backend(name: str = "auto") -> str:
    """Canonicalize a backend request.

    ``"auto"`` resolves to the best *available* backend on this host;
    an explicit name is validated but returned as-is even when
    unavailable here, because plans are routinely tuned for machines
    the tuner is not running on (the executor falls back to numpy at
    run time when the recorded backend cannot bind).
    """
    if name == "auto":
        for candidate in BACKEND_PRIORITY:
            if get_backend(candidate).available():
                return candidate
        return "numpy"
    get_backend(name)  # validates
    return name


def backend_provenance(name: str | None = None) -> dict[str, Any]:
    """Structured provenance for bench JSON output.

    With ``name`` given, that backend's record; otherwise a summary of
    every registered backend plus what ``"auto"`` resolves to.
    """
    if name is not None:
        return get_backend(resolve_backend(name)).provenance()
    return {
        "auto": resolve_backend("auto"),
        "backends": [get_backend(n).provenance() for n in BACKEND_PRIORITY],
    }
