"""Resumable autotuning campaigns over (machine x distribution x level).

A campaign is a tuning sweep run ahead of traffic: every cell of the
grid gets a tuned plan into the registry, so later ``solve_service``
calls are all registry hits.  Cells are tracked in the
``campaign_cells`` table and committed one at a time, so a killed
campaign restarts exactly where it stopped — completed cells are
skipped, never re-tuned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.machines.presets import get_preset
from repro.store.registry import PlanRegistry, RegistryHit, TuneKey
from repro.store.trialdb import TrialDB
from repro.tuner.plan import DEFAULT_ACCURACIES

__all__ = ["Campaign", "CampaignSpec", "CellResult"]


@dataclass(frozen=True)
class CampaignSpec:
    """The grid one campaign sweeps, plus shared tuning keyfields."""

    name: str
    machines: tuple[str, ...] = ("intel", "amd", "sun")
    distributions: tuple[str, ...] = ("unbiased",)
    levels: tuple[int, ...] = (4, 5)
    kind: str = "multigrid-v"
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES
    seed: int | None = 0
    instances: int = 2
    #: campaigns pre-warm the registry per machine, so by default a cell
    #: is only satisfied by that machine's own plan (no nearest fallback)
    allow_nearest: bool = False

    def cells(self) -> list[tuple[str, str, int]]:
        """Deterministic cell order: machine-major, then distribution,
        then level."""
        return list(product(self.machines, self.distributions, self.levels))

    def key_for(self, distribution: str, level: int) -> TuneKey:
        return TuneKey(
            kind=self.kind,
            distribution=distribution,
            max_level=level,
            accuracies=self.accuracies,
            seed=self.seed,
            instances=self.instances,
        )


@dataclass(frozen=True)
class CellResult:
    """Outcome of one campaign cell in one ``run()`` call."""

    machine: str
    distribution: str
    max_level: int
    #: 'exact' / 'nearest' / 'tuned' from the registry, or 'skipped'
    #: for cells already done before this run
    source: str
    simulated_cost: float | None = None
    wall_seconds: float | None = None
    hit: RegistryHit | None = field(default=None, compare=False)


class Campaign:
    """Drives a :class:`CampaignSpec` through a :class:`PlanRegistry`."""

    def __init__(self, spec: CampaignSpec, db: TrialDB | str | Path = ":memory:") -> None:
        self.spec = spec
        self.registry = db if isinstance(db, PlanRegistry) else PlanRegistry(db)
        self.db = self.registry.db
        self._ensure_cells()

    def _ensure_cells(self) -> None:
        for machine, dist, level in self.spec.cells():
            self.db.conn.execute(
                """
                INSERT OR IGNORE INTO campaign_cells
                    (campaign, machine, distribution, max_level)
                VALUES (?, ?, ?, ?)
                """,
                (self.spec.name, machine, dist, level),
            )
        self.db.conn.commit()

    # -- status -----------------------------------------------------------

    def cells(self) -> list[dict[str, Any]]:
        rows = self.db.conn.execute(
            """
            SELECT machine, distribution, max_level, status, source,
                   simulated_cost, wall_seconds, completed_at
            FROM campaign_cells WHERE campaign = ?
            ORDER BY machine, distribution, max_level
            """,
            (self.spec.name,),
        ).fetchall()
        return [dict(row) for row in rows]

    def pending(self) -> list[tuple[str, str, int]]:
        """Grid cells not yet completed, in sweep order."""
        done = {
            (c["machine"], c["distribution"], c["max_level"])
            for c in self.cells()
            if c["status"] == "done"
        }
        return [cell for cell in self.spec.cells() if cell not in done]

    def status(self) -> dict[str, int]:
        counts = {"done": 0, "pending": 0}
        for cell in self.cells():
            counts[cell["status"]] = counts.get(cell["status"], 0) + 1
        return counts

    # -- execution --------------------------------------------------------

    def run(
        self,
        max_cells: int | None = None,
        on_cell: Callable[[CellResult], None] | None = None,
    ) -> list[CellResult]:
        """Run the sweep, skipping completed cells.

        ``max_cells`` bounds how many *pending* cells this call executes
        (handy for incremental progress and for tests simulating an
        interruption); each completed cell commits immediately, so any
        interruption loses at most the in-flight cell.
        """
        results: list[CellResult] = []
        executed = 0
        pending = set(self.pending())
        for machine, dist, level in self.spec.cells():
            if (machine, dist, level) not in pending:
                results.append(CellResult(machine, dist, level, source="skipped"))
                continue
            if max_cells is not None and executed >= max_cells:
                break
            profile = get_preset(machine)
            start = time.perf_counter()
            hit = self.registry.get_or_tune(
                profile,
                self.spec.key_for(dist, level),
                allow_nearest=self.spec.allow_nearest,
            )
            wall = time.perf_counter() - start
            cost = hit.plan.time_on(profile, level, hit.plan.num_accuracies - 1)
            self.db.conn.execute(
                """
                UPDATE campaign_cells
                SET status = 'done', source = ?, simulated_cost = ?,
                    wall_seconds = ?,
                    completed_at = strftime('%Y-%m-%dT%H:%M:%fZ', 'now')
                WHERE campaign = ? AND machine = ? AND distribution = ?
                  AND max_level = ?
                """,
                (hit.source, cost, wall, self.spec.name, machine, dist, level),
            )
            self.db.conn.commit()
            result = CellResult(
                machine, dist, level, hit.source, cost, wall, hit=hit
            )
            results.append(result)
            executed += 1
            if on_cell is not None:
                on_cell(result)
        return results

    # -- reporting --------------------------------------------------------

    def run_table(self) -> str:
        """The campaign grid as an aligned text table (bench/report style)."""
        from repro.bench.report import format_table

        headers = [
            "machine",
            "distribution",
            "level",
            "status",
            "source",
            "simulated_cost",
            "wall_seconds",
        ]
        rows: list[Sequence[object]] = []
        for cell in self.cells():
            rows.append(
                [
                    cell["machine"],
                    cell["distribution"],
                    cell["max_level"],
                    cell["status"],
                    cell["source"] or "-",
                    _fmt(cell["simulated_cost"]),
                    _fmt(cell["wall_seconds"]),
                ]
            )
        return format_table(headers, rows)


def _fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:.3e}"
