"""Resumable autotuning campaigns over (machine x distribution x operator x level).

A campaign is a tuning sweep run ahead of traffic: every cell of the
grid gets a tuned plan into the registry, so later ``solve_service``
calls are all registry hits.  Cells are tracked in the
``campaign_cells`` table and committed one at a time, so a killed
campaign restarts exactly where it stopped — completed cells are
skipped, never re-tuned.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.machines.presets import get_preset
from repro.operators.spec import parse_operator
from repro.store.registry import PlanRegistry, RegistryHit, TuneKey
from repro.store.trialdb import TrialDB
from repro.tuner.plan import DEFAULT_ACCURACIES

__all__ = ["Campaign", "CampaignSpec", "CellResult", "execute_cell", "tune_cell"]

#: One grid cell: (machine, distribution, operator, max_level).
Cell = tuple[str, str, str, int]


@dataclass(frozen=True)
class CampaignSpec:
    """The grid one campaign sweeps, plus shared tuning keyfields."""

    name: str
    machines: tuple[str, ...] = ("intel", "amd", "sun")
    distributions: tuple[str, ...] = ("unbiased",)
    levels: tuple[int, ...] = (4, 5)
    #: canonical operator spec strings (normalized on construction)
    operators: tuple[str, ...] = ("poisson",)
    kind: str = "multigrid-v"
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES
    seed: int | None = 0
    instances: int = 2
    #: kernel backend every cell's tune prices against (spec-level, not a
    #: grid axis).  Kept verbatim — ``"auto"`` stays ``"auto"`` in the
    #: stored spec so each fleet worker resolves it against its *own*
    #: backend availability when it builds the cell's TuneKey.
    backend: str = "numpy"
    #: campaigns pre-warm the registry per machine, so by default a cell
    #: is only satisfied by that machine's own plan (no nearest fallback)
    allow_nearest: bool = False
    #: which search cold cells run: 'dp' (exhaustive) or 'model' (the
    #: budgeted BO search warm-started from the store's trials)
    tuner: str = "dp"

    def __post_init__(self) -> None:
        normalized = tuple(parse_operator(op).canonical() for op in self.operators)
        object.__setattr__(self, "operators", normalized)
        if self.tuner not in ("dp", "model"):
            raise ValueError(f"unknown tuner {self.tuner!r}; use 'dp' or 'model'")

    def cells(self) -> list[Cell]:
        """Deterministic cell order: machine-major, then distribution,
        then operator, then level."""
        return list(
            product(self.machines, self.distributions, self.operators, self.levels)
        )

    def key_for(self, distribution: str, level: int, operator: str) -> TuneKey:
        return TuneKey(
            kind=self.kind,
            distribution=distribution,
            max_level=level,
            accuracies=self.accuracies,
            seed=self.seed,
            instances=self.instances,
            operator=operator,
            backend=self.backend,
        )

    # -- persistence (fleet workers rebuild specs from the store) ---------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form, stored in the ``campaigns`` table so fleet
        workers can rebuild tuning keys from bare cell rows."""
        return {
            "name": self.name,
            "machines": list(self.machines),
            "distributions": list(self.distributions),
            "levels": list(self.levels),
            "operators": list(self.operators),
            "kind": self.kind,
            "accuracies": list(self.accuracies),
            "seed": self.seed,
            "instances": self.instances,
            "backend": self.backend,
            "allow_nearest": self.allow_nearest,
            "tuner": self.tuner,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignSpec":
        return cls(
            name=data["name"],
            machines=tuple(data["machines"]),
            distributions=tuple(data["distributions"]),
            levels=tuple(int(level) for level in data["levels"]),
            operators=tuple(data["operators"]),
            kind=data["kind"],
            accuracies=tuple(float(a) for a in data["accuracies"]),
            seed=data["seed"],
            instances=int(data["instances"]),
            backend=str(data.get("backend", "numpy")),
            allow_nearest=bool(data.get("allow_nearest", False)),
            tuner=str(data.get("tuner", "dp")),
        )


@dataclass(frozen=True)
class CellResult:
    """Outcome of one campaign cell in one ``run()`` call."""

    machine: str
    distribution: str
    operator: str
    max_level: int
    #: 'exact' / 'nearest' / 'tuned' from the registry, or 'skipped'
    #: for cells already done before this run
    source: str
    simulated_cost: float | None = None
    wall_seconds: float | None = None
    hit: RegistryHit | None = field(default=None, compare=False)


def tune_cell(
    registry: PlanRegistry,
    spec: CampaignSpec,
    machine: str,
    distribution: str,
    operator: str,
    max_level: int,
    worker_id: str | None = None,
    attempt: int = 1,
) -> CellResult:
    """Tune (or fetch) one campaign cell *without* touching its row.

    The plan and trial rows commit inside ``get_or_tune`` with
    structured provenance (which worker/host ran the tune, attempt
    number, duration); marking the cell done is the caller's job —
    :func:`execute_cell` commits it unconditionally, while the fleet's
    :class:`~repro.fleet.queue.WorkQueue` commits it under a
    lease-ownership guard.
    """
    from repro.store.registry import build_provenance

    profile = get_preset(machine)
    start = time.perf_counter()
    hit = registry.get_or_tune(
        profile,
        spec.key_for(distribution, max_level, operator),
        allow_nearest=spec.allow_nearest,
        tuner=spec.tuner,
        provenance=build_provenance(
            worker=worker_id, attempt=attempt, tuner=spec.tuner
        ),
    )
    wall = time.perf_counter() - start
    cost = hit.plan.time_on(profile, max_level, hit.plan.num_accuracies - 1)
    return CellResult(
        machine, distribution, operator, max_level, hit.source, cost, wall, hit=hit
    )


def execute_cell(
    registry: PlanRegistry,
    spec: CampaignSpec,
    machine: str,
    distribution: str,
    operator: str,
    max_level: int,
    worker_id: str | None = None,
    attempt: int = 1,
) -> CellResult:
    """Tune (or fetch) one campaign cell and mark it done.

    The plan and trial rows commit inside ``get_or_tune``; the cell's
    completion then commits as its own atomic transaction, so a crash
    between the two leaves a resumable pending cell whose re-run is a
    cheap registry exact-hit.  Shared by the serial sweep and the
    parallel per-process workers (:mod:`repro.parallel.campaigns`).
    """
    result = tune_cell(
        registry, spec, machine, distribution, operator, max_level,
        worker_id=worker_id, attempt=attempt,
    )

    def commit_done(conn: Any) -> None:
        conn.execute(
            """
            UPDATE campaign_cells
            SET status = 'done', source = ?, simulated_cost = ?,
                wall_seconds = ?, worker_id = ?,
                completed_at = strftime('%Y-%m-%dT%H:%M:%fZ', 'now')
            WHERE campaign = ? AND machine = ? AND distribution = ?
              AND operator = ? AND max_level = ?
            """,
            (
                result.source,
                result.simulated_cost,
                result.wall_seconds,
                worker_id,
                spec.name,
                machine,
                distribution,
                operator,
                max_level,
            ),
        )
        conn.commit()

    registry.db.write(commit_done)
    return result


class Campaign:
    """Drives a :class:`CampaignSpec` through a :class:`PlanRegistry`."""

    def __init__(
        self,
        spec: CampaignSpec,
        db: PlanRegistry | TrialDB | str | Path = ":memory:",
    ) -> None:
        self.spec = spec
        if isinstance(db, PlanRegistry):
            self.registry = db
        elif isinstance(db, (TrialDB, str, Path)):
            self.registry = PlanRegistry(db)
        else:
            raise TypeError(
                f"db must be a PlanRegistry, TrialDB, or database path; got {db!r}"
            )
        self.db = self.registry.db
        self._ensure_cells()

    def _ensure_cells(self) -> None:
        from repro.operators.spec import parse_operator

        def insert_cells(conn: Any) -> None:
            for machine, dist, operator, level in self.spec.cells():
                conn.execute(
                    """
                    INSERT OR IGNORE INTO campaign_cells
                        (campaign, machine, distribution, operator, ndim,
                         backend, max_level)
                    VALUES (?, ?, ?, ?, ?, ?, ?)
                    """,
                    (
                        self.spec.name,
                        machine,
                        dist,
                        operator,
                        parse_operator(operator).ndim,
                        self.spec.backend,
                        level,
                    ),
                )
            conn.commit()

        self.db.write(insert_cells)

    # -- status -----------------------------------------------------------

    def cells(self) -> list[dict[str, Any]]:
        rows = self.db.conn.execute(
            """
            SELECT machine, distribution, operator, ndim, max_level, status,
                   source, simulated_cost, wall_seconds, completed_at
            FROM campaign_cells WHERE campaign = ?
            ORDER BY machine, distribution, operator, max_level
            """,
            (self.spec.name,),
        ).fetchall()
        return [dict(row) for row in rows]

    def pending(self) -> list[Cell]:
        """Grid cells not yet completed, in sweep order."""
        done = {
            (c["machine"], c["distribution"], c["operator"], c["max_level"])
            for c in self.cells()
            if c["status"] == "done"
        }
        return [cell for cell in self.spec.cells() if cell not in done]

    def status(self) -> dict[str, int]:
        counts = {"done": 0, "pending": 0}
        for cell in self.cells():
            counts[cell["status"]] = counts.get(cell["status"], 0) + 1
        return counts

    # -- execution --------------------------------------------------------

    def run(
        self,
        max_cells: int | None = None,
        on_cell: Callable[[CellResult], None] | None = None,
        jobs: int | None = None,
    ) -> list[CellResult]:
        """Run the sweep, skipping completed cells.

        ``max_cells`` bounds how many *pending* cells this call executes
        (handy for incremental progress and for tests simulating an
        interruption); each completed cell commits immediately, so any
        interruption loses at most the in-flight cell(s).

        ``jobs`` > 1 fans pending cells across that many worker
        processes (file-backed stores only; each worker opens its own
        WAL connection).  Cells are independent tuning problems, so the
        resulting registry is identical to a serial run's — only the
        wall-clock changes.  With ``jobs`` > 1, ``on_cell`` fires in
        completion order and the cell results carry their registry hit
        back from the worker process.
        """
        if jobs is not None and jobs > 1:
            from repro.parallel.campaigns import run_cells_parallel

            return run_cells_parallel(
                self, jobs=jobs, max_cells=max_cells, on_cell=on_cell
            )
        results: list[CellResult] = []
        executed = 0
        pending = set(self.pending())
        for machine, dist, operator, level in self.spec.cells():
            if (machine, dist, operator, level) not in pending:
                results.append(
                    CellResult(machine, dist, operator, level, source="skipped")
                )
                continue
            if max_cells is not None and executed >= max_cells:
                break
            result = execute_cell(self.registry, self.spec, machine, dist, operator, level)
            results.append(result)
            executed += 1
            if on_cell is not None:
                on_cell(result)
        return results

    # -- reporting --------------------------------------------------------

    def run_table(self) -> str:
        """The campaign grid as an aligned text table (bench/report style)."""
        from repro.bench.report import format_table

        headers = [
            "machine",
            "distribution",
            "operator",
            "level",
            "status",
            "source",
            "simulated_cost",
            "wall_seconds",
        ]
        rows: list[Sequence[object]] = []
        for cell in self.cells():
            rows.append(
                [
                    cell["machine"],
                    cell["distribution"],
                    cell["operator"],
                    cell["max_level"],
                    cell["status"],
                    cell["source"] or "-",
                    _fmt(cell["simulated_cost"]),
                    _fmt(cell["wall_seconds"]),
                ]
            )
        return format_table(headers, rows)


def _fmt(value: float | None) -> str:
    return "-" if value is None else f"{value:.3e}"
