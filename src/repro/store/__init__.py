"""Persistent tuning store: trial database, plan registry, campaigns.

The paper's model is "tune once, store the configuration, reuse it on
every subsequent run" (PetaBricks section 3.2.1).  This subsystem makes
that operational at scale:

* :class:`~repro.store.trialdb.TrialDB` — SQLite (WAL) experiment
  database, one row per tuning trial with py_experimenter-style
  keyfields and resultfields, exportable as a run table;
* :class:`~repro.store.registry.PlanRegistry` — tuned plans keyed by
  :meth:`MachineProfile.fingerprint`, with exact-hit, nearest-profile
  fallback (cross-architecture reuse, Figure 14), and tune-and-insert;
* :class:`~repro.store.campaign.Campaign` — resumable sweeps over
  (machine x distribution x operator x level) grids that pre-warm the
  registry.

Schema revisions migrate in place on open (``PRAGMA user_version``
tracks them; see :mod:`repro.store.schema`): v1 -> v2 added the
``operator`` keyfield, v2 -> v3 added ``ndim`` for the
dimension-general solver — existing rows are stamped with the implicit
pre-3-D default ``ndim=2`` and plan keys gain the ``|2`` suffix, so
every stored 2-D plan keeps resolving while 3-D plans land under their
own keys — and v5 -> v6 added the model-based tuner's ``tuner``
provenance column plus the ``model_artifacts`` table
(:class:`~repro.store.models.ModelStore`) that persists fitted cost
models for fleet-wide warm starts.  Each migration step runs inside one
transaction: a crash mid-migration rolls back to the previous clean
revision and simply retries on the next open.

Entry points for callers are :func:`repro.core.autotune_cached` and
:func:`repro.core.solve_service`, plus ``repro-mg store`` on the CLI
(``store tune --ndim 3`` sweeps the 3-D families).
"""

from repro.store.campaign import Campaign, CampaignSpec, CellResult
from repro.store.models import ModelStore, model_artifact_key
from repro.store.registry import PlanRegistry, RegistryHit, TuneKey, profile_distance
from repro.store.sink import CollectingSink, DBTrialSink, TrialSink, plan_cycle_shape
from repro.store.trialdb import TrialDB, TrialRecord

__all__ = [
    "Campaign",
    "CampaignSpec",
    "CellResult",
    "CollectingSink",
    "DBTrialSink",
    "ModelStore",
    "PlanRegistry",
    "RegistryHit",
    "TrialDB",
    "TrialRecord",
    "TrialSink",
    "TuneKey",
    "model_artifact_key",
    "plan_cycle_shape",
    "profile_distance",
]
