"""Persistent tuning store: trial database, plan registry, campaigns.

The paper's model is "tune once, store the configuration, reuse it on
every subsequent run" (PetaBricks section 3.2.1).  This subsystem makes
that operational at scale:

* :class:`~repro.store.trialdb.TrialDB` — SQLite (WAL) experiment
  database, one row per tuning trial with py_experimenter-style
  keyfields and resultfields, exportable as a run table;
* :class:`~repro.store.registry.PlanRegistry` — tuned plans keyed by
  :meth:`MachineProfile.fingerprint`, with exact-hit, nearest-profile
  fallback (cross-architecture reuse, Figure 14), and tune-and-insert;
* :class:`~repro.store.campaign.Campaign` — resumable sweeps over
  (machine x distribution x operator x level) grids that pre-warm the
  registry.

Entry points for callers are :func:`repro.core.autotune_cached` and
:func:`repro.core.solve_service`, plus ``repro-mg store`` on the CLI.
"""

from repro.store.campaign import Campaign, CampaignSpec, CellResult
from repro.store.registry import PlanRegistry, RegistryHit, TuneKey, profile_distance
from repro.store.sink import CollectingSink, DBTrialSink, TrialSink, plan_cycle_shape
from repro.store.trialdb import TrialDB, TrialRecord

__all__ = [
    "Campaign",
    "CampaignSpec",
    "CellResult",
    "CollectingSink",
    "DBTrialSink",
    "PlanRegistry",
    "RegistryHit",
    "TrialDB",
    "TrialRecord",
    "TrialSink",
    "TuneKey",
    "plan_cycle_shape",
    "profile_distance",
]
