"""The trial database: a durable log of every tuning run.

PetaBricks tunes once and stores the configuration (section 3.2.1); this
module stores the *evidence* too.  Every call to the DP tuner can drop a
:class:`TrialRecord` here, giving the reproduction an experiment database
in the keyfields/resultfields style: the keyfields say what was tuned,
the resultfields say what the tuner chose and what it cost.

The database is a single SQLite file opened in WAL mode, so concurrent
solvers on one host can read plans while a campaign writes new trials.
"""

from __future__ import annotations

import csv
import json
import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence, TypeVar

from repro.store.retry import DEFAULT_RETRY, RetryPolicy, run_with_retry
from repro.store.schema import ensure_schema

__all__ = ["TrialDB", "TrialRecord", "canonical_accuracies", "canonical_seed"]

T = TypeVar("T")

#: Keyfield column order shared by queries and the run-table export.
KEYFIELDS = (
    "kind",
    "distribution",
    "operator",
    "ndim",
    "backend",
    "max_level",
    "accuracies",
    "machine_fingerprint",
    "seed",
    "instances",
)
RESULTFIELDS = (
    "machine_name",
    "cycle_shape",
    "simulated_cost",
    "wall_seconds",
    "provenance",
    "tuner",
)


def canonical_accuracies(accuracies: Sequence[float]) -> str:
    """Canonical text form of an accuracy ladder (a stable keyfield)."""
    return json.dumps([float(a) for a in accuracies], separators=(",", ":"))


def canonical_seed(seed: int | None) -> str:
    """Canonical text form of a training seed (``None`` is a valid seed,
    and SQLite NULLs never compare equal, so seeds are stored as text)."""
    return json.dumps(seed)


@dataclass(frozen=True)
class TrialRecord:
    """One tuning run: keyfields identify it, resultfields describe it."""

    kind: str
    distribution: str
    max_level: int
    accuracies: tuple[float, ...]
    machine_fingerprint: str
    seed: int | None
    instances: int
    #: canonical operator spec string (the pre-operator-layer default)
    operator: str = "poisson"
    #: grid dimensionality (2-D is the pre-3-D implicit default)
    ndim: int = 2
    #: kernel backend the tune priced ('numpy' is the pre-backend default)
    backend: str = "numpy"
    machine_name: str | None = None
    cycle_shape: str | None = None
    simulated_cost: float | None = None
    wall_seconds: float | None = None
    plan_json: str | None = None
    #: structured who-ran-this metadata as canonical JSON (worker id,
    #: host, pid, attempt, duration) — see ``registry.build_provenance``
    provenance: str | None = None
    #: which search produced the plan: 'dp' (exhaustive) or 'model'
    #: (learned-cost-model BO) — provenance, not part of the cell key
    tuner: str = "dp"
    trial_id: int | None = field(default=None, compare=False)
    created_at: str | None = field(default=None, compare=False)

    def key(self) -> tuple:
        """The keyfield tuple (what makes two trials 'the same' cell)."""
        return (
            self.kind,
            self.distribution,
            self.operator,
            self.ndim,
            self.backend,
            self.max_level,
            canonical_accuracies(self.accuracies),
            self.machine_fingerprint,
            canonical_seed(self.seed),
            self.instances,
        )


class TrialDB:
    """SQLite-backed trial log (WAL mode) plus the registry/campaign tables.

    Accepts a filesystem path or ``":memory:"``; usable as a context
    manager.  All store components (:class:`~repro.store.registry.
    PlanRegistry`, :class:`~repro.store.campaign.Campaign`) share one
    ``TrialDB`` and therefore one database file.
    """

    def __init__(
        self,
        path: str | Path = ":memory:",
        busy_timeout: float = 30.0,
        retry: RetryPolicy = DEFAULT_RETRY,
    ) -> None:
        self.path = str(path)
        self.retry = retry
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        # The connection may cross threads: the solve server's workers
        # and background tuner share one registry, and an in-memory
        # store is per-connection, so per-thread connections cannot
        # work.  `self.lock` serializes every statement-to-commit
        # sequence (TrialDB's own methods and PlanRegistry's take it),
        # so concurrent threads cannot interleave half-built
        # transactions; it is reentrant so composed operations
        # (get_or_tune -> put -> record) nest freely.
        self.lock = threading.RLock()
        self.conn = sqlite3.connect(self.path, check_same_thread=False)
        self.conn.row_factory = sqlite3.Row
        if self.path != ":memory:":
            self.conn.execute("PRAGMA journal_mode=WAL")
            self.conn.execute("PRAGMA synchronous=NORMAL")
            # Parallel campaigns and fleet workers run one writer
            # process per in-flight cell; WAL serializes the commits,
            # and the busy timeout makes lock waits block instead of
            # failing.  Waits past the timeout surface as `database is
            # locked` and are absorbed by :meth:`write`'s bounded
            # exponential-backoff retries.
            self.conn.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
        ensure_schema(self.conn)

    # -- write path -------------------------------------------------------

    def write(self, fn: Callable[[sqlite3.Connection], T]) -> T:
        """Run a write transaction with locked-database retries.

        ``fn`` receives the connection under the store lock and must
        leave it committed; on ``sqlite3.OperationalError`` the
        half-built transaction is rolled back and, for lock contention,
        retried with exponential backoff per ``self.retry``.  Every
        TrialDB/PlanRegistry/WorkQueue write path funnels through here,
        so one policy governs the whole store.
        """

        def attempt() -> T:
            with self.lock:
                try:
                    return fn(self.conn)
                except sqlite3.OperationalError:
                    self.conn.rollback()
                    raise

        return run_with_retry(attempt, self.retry)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "TrialDB":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- trials -----------------------------------------------------------

    def record_trial(self, record: TrialRecord) -> int:
        """Append one trial row; returns its id."""

        def insert(conn: sqlite3.Connection) -> int:
            cur = conn.execute(
                """
                INSERT INTO trials (kind, distribution, operator, ndim, backend,
                                    max_level, accuracies, machine_fingerprint,
                                    seed, instances, machine_name, cycle_shape,
                                    simulated_cost, wall_seconds, provenance,
                                    tuner, plan_json)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                record.key()
                + (
                    record.machine_name,
                    record.cycle_shape,
                    record.simulated_cost,
                    record.wall_seconds,
                    record.provenance,
                    record.tuner,
                    record.plan_json,
                ),
            )
            conn.commit()
            return int(cur.lastrowid)

        return self.write(insert)

    def trials(
        self,
        kind: str | None = None,
        distribution: str | None = None,
        machine_fingerprint: str | None = None,
        max_level: int | None = None,
        operator: str | None = None,
        ndim: int | None = None,
        backend: str | None = None,
    ) -> list[TrialRecord]:
        """Trial records matching the given keyfield filters, oldest first.

        ``operator`` accepts any spelling of a spec; it is normalized to
        the canonical form rows are stored under.
        """
        if operator is not None:
            from repro.operators.spec import parse_operator

            operator = parse_operator(operator).canonical()
        clauses, params = _filters(
            kind=kind,
            distribution=distribution,
            machine_fingerprint=machine_fingerprint,
            max_level=max_level,
            operator=operator,
            ndim=ndim,
            backend=backend,
        )
        with self.lock:
            rows = self.conn.execute(
                f"SELECT * FROM trials{clauses} ORDER BY id", params
            ).fetchall()
        return [_record_from_row(row) for row in rows]

    def count_trials(self) -> int:
        with self.lock:
            (n,) = self.conn.execute("SELECT COUNT(*) FROM trials").fetchone()
        return int(n)

    # -- run-table export -------------------------------------------------

    def run_table_rows(self) -> tuple[list[str], list[list[Any]]]:
        """(headers, rows) of the keyfields/resultfields run table."""
        headers = list(KEYFIELDS) + list(RESULTFIELDS) + ["created_at"]
        rows = []
        with self.lock:
            fetched = self.conn.execute(
                f"SELECT {', '.join(headers)} FROM trials ORDER BY id"
            ).fetchall()
        for row in fetched:
            rows.append([row[h] for h in headers])
        return headers, rows

    def format_run_table(self) -> str:
        """The run table as an aligned text table (bench/report style)."""
        from repro.bench.report import format_table

        headers, rows = self.run_table_rows()
        if not rows:
            return "(no trials recorded)"
        display = [[_short(cell) for cell in row] for row in rows]
        return format_table(headers, display)

    def export_csv(self, path: str | Path) -> int:
        """Write the run table as CSV; returns the number of data rows."""
        headers, rows = self.run_table_rows()
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(headers)
            writer.writerows(rows)
        return len(rows)

    # -- maintenance ------------------------------------------------------

    def gc(self) -> dict[str, int]:
        """Compact the store.

        Deletes superseded trials (older rows sharing the keyfields of a
        newer one) and campaign cells left mid-flight, then VACUUMs.
        Returns counts of what was removed.
        """
        def compact(conn: sqlite3.Connection) -> dict[str, int]:
            cur = conn.execute(
                f"""
                DELETE FROM trials WHERE id NOT IN (
                    SELECT MAX(id) FROM trials GROUP BY {', '.join(KEYFIELDS)}
                )
                """
            )
            removed_trials = cur.rowcount
            cur = conn.execute("DELETE FROM campaign_cells WHERE status != 'done'")
            removed_cells = cur.rowcount
            conn.commit()
            conn.execute("VACUUM")
            return {"trials": removed_trials, "campaign_cells": removed_cells}

        return self.write(compact)


def _filters(**kwargs: Any) -> tuple[str, list[Any]]:
    clauses = [f"{name} = ?" for name, value in kwargs.items() if value is not None]
    params = [value for value in kwargs.values() if value is not None]
    return (" WHERE " + " AND ".join(clauses)) if clauses else "", params


def _record_from_row(row: sqlite3.Row) -> TrialRecord:
    return TrialRecord(
        kind=row["kind"],
        distribution=row["distribution"],
        operator=row["operator"],
        ndim=int(row["ndim"]),
        max_level=int(row["max_level"]),
        accuracies=tuple(json.loads(row["accuracies"])),
        backend=row["backend"],
        machine_fingerprint=row["machine_fingerprint"],
        seed=json.loads(row["seed"]),
        instances=int(row["instances"]),
        machine_name=row["machine_name"],
        cycle_shape=row["cycle_shape"],
        simulated_cost=row["simulated_cost"],
        wall_seconds=row["wall_seconds"],
        plan_json=row["plan_json"],
        provenance=row["provenance"],
        tuner=row["tuner"],
        trial_id=int(row["id"]),
        created_at=row["created_at"],
    )


def _short(cell: Any, limit: int = 40) -> str:
    if isinstance(cell, float):
        return f"{cell:.3e}"
    text = "-" if cell is None else str(cell)
    return text if len(text) <= limit else text[: limit - 3] + "..."
