"""Trial sinks: how tuners report finished tuning runs to the store.

The tuners (:class:`~repro.tuner.dp.VCycleTuner`,
:class:`~repro.tuner.full_mg.FullMGTuner`) accept an optional ``sink``
object and hand it one :class:`~repro.store.trialdb.TrialRecord` per
``tune()`` call.  The hook is deliberately thin — a single ``record``
method — so the tuner layer never imports the store at module scope and
tests can substitute a :class:`CollectingSink`.
"""

from __future__ import annotations

import json
from typing import Any

from repro.store.trialdb import TrialDB, TrialRecord

__all__ = [
    "CollectingSink",
    "DBTrialSink",
    "TrialSink",
    "emit_tuning_trial",
    "plan_cycle_shape",
]


class TrialSink:
    """Interface: receive one record per completed tuning run."""

    def record(self, trial: TrialRecord) -> None:
        raise NotImplementedError


class CollectingSink(TrialSink):
    """In-memory sink (tests, ad-hoc inspection)."""

    def __init__(self) -> None:
        self.trials: list[TrialRecord] = []

    def record(self, trial: TrialRecord) -> None:
        self.trials.append(trial)


class DBTrialSink(TrialSink):
    """Sink writing straight into a :class:`TrialDB`."""

    def __init__(self, db: TrialDB) -> None:
        self.db = db

    def record(self, trial: TrialRecord) -> None:
        self.db.record_trial(trial)


def plan_cycle_shape(plan: Any) -> str:
    """Compact description of the tuned cycle: the top-level choice per
    accuracy index (the row Figure 5's diagrams are drawn from)."""
    return " | ".join(
        f"p{i}:{plan.choice(plan.max_level, i).describe()}"
        for i in range(plan.num_accuracies)
    )


def emit_tuning_trial(
    sink: TrialSink,
    plan: Any,
    timing: Any,
    training: Any,
    wall_seconds: float,
) -> TrialRecord:
    """Build the trial record for a finished ``tune()`` and hand it to
    ``sink``.  Called by the tuners (lazily imported, see tuner/dp.py)."""
    from repro.tuner.config import plan_to_dict

    profile = getattr(timing, "profile", None)
    m = plan.num_accuracies
    record = TrialRecord(
        kind=plan.metadata.get("kind", "multigrid-v"),
        distribution=training.distribution,
        operator=training.operator_name,
        ndim=getattr(plan, "ndim", 2),
        max_level=plan.max_level,
        accuracies=plan.accuracies,
        machine_fingerprint=profile.fingerprint() if profile else "wallclock",
        seed=training.seed,
        instances=training.instances,
        machine_name=profile.name if profile else None,
        cycle_shape=plan_cycle_shape(plan),
        simulated_cost=(
            plan.time_on(profile, plan.max_level, m - 1) if profile else None
        ),
        wall_seconds=wall_seconds,
        plan_json=json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":")),
        tuner=str(plan.metadata.get("tuner", "dp")),
    )
    sink.record(record)
    return record
