"""Persistence for fitted cost models (the ``model_artifacts`` table).

A fitted :class:`~repro.modeltuner.costmodel.CostModel` is expensive to
assemble only in the sense that it needs *data* — accumulated trial rows
and solve-profiler cells.  Persisting the fitted artifact lets a fleet
worker or a cold machine pull model-predicted plans without having that
data locally: the store carries the model the same way it carries plans.

One current artifact per ``(machine fingerprint, operator, ndim,
backend)`` — newer fits replace older ones, mirroring the plans table's
one-current-plan-per-key rule.  The artifact row stores the model's
canonical JSON (:meth:`CostModel.to_json`), which round-trips the fitted
laws, the base profile, and the calibration exactly.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any

from repro.store.trialdb import TrialDB

__all__ = ["ModelStore", "model_artifact_key"]


def model_artifact_key(
    fingerprint: str, operator: str = "poisson", ndim: int = 2, backend: str = "numpy"
) -> str:
    """Storage key of the current model for one pricing context."""
    return "|".join([fingerprint, operator, str(ndim), backend])


class ModelStore:
    """Fitted cost-model artifacts over a shared :class:`TrialDB`."""

    def __init__(self, db: TrialDB) -> None:
        self.db = db

    def put_model(
        self,
        model: Any,
        operator: str = "poisson",
        ndim: int = 2,
        backend: str = "numpy",
        provenance: dict[str, Any] | None = None,
    ) -> str:
        """Store (or replace) the model for its base profile's context;
        returns the storage key."""
        key = model_artifact_key(
            model.base.fingerprint(), operator, ndim, backend
        )
        payload = model.to_json()
        trained_rows = int(model.provenance.get("rows", 0)) + int(
            model.provenance.get("trials", 0)
        )
        provenance_json = (
            json.dumps(provenance, sort_keys=True, separators=(",", ":"))
            if provenance is not None
            else None
        )

        def upsert(conn: sqlite3.Connection) -> None:
            conn.execute(
                """
                INSERT INTO model_artifacts (model_key, machine_fingerprint,
                                             operator, ndim, backend,
                                             model_json, provenance,
                                             trained_rows)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (model_key) DO UPDATE SET
                    model_json = excluded.model_json,
                    provenance = excluded.provenance,
                    trained_rows = excluded.trained_rows
                """,
                (
                    key,
                    model.base.fingerprint(),
                    operator,
                    ndim,
                    backend,
                    payload,
                    provenance_json,
                    trained_rows,
                ),
            )
            conn.commit()

        self.db.write(upsert)
        return key

    def get_model_json(
        self,
        fingerprint: str,
        operator: str = "poisson",
        ndim: int = 2,
        backend: str = "numpy",
    ) -> str | None:
        """The stored model's canonical JSON, or ``None`` when cold."""
        key = model_artifact_key(fingerprint, operator, ndim, backend)
        with self.db.lock:
            row = self.db.conn.execute(
                "SELECT model_json FROM model_artifacts WHERE model_key = ?",
                (key,),
            ).fetchone()
        return row["model_json"] if row is not None else None

    def get_cost_model(
        self,
        fingerprint: str,
        operator: str = "poisson",
        ndim: int = 2,
        backend: str = "numpy",
    ) -> Any | None:
        """The stored :class:`CostModel`, rebuilt, or ``None`` when cold."""
        payload = self.get_model_json(fingerprint, operator, ndim, backend)
        if payload is None:
            return None
        from repro.modeltuner.costmodel import CostModel

        return CostModel.from_json(payload)

    def models(self) -> list[dict[str, Any]]:
        """Summary rows of stored artifacts (for ``store models``)."""
        with self.db.lock:
            rows = self.db.conn.execute(
                """
                SELECT model_key, machine_fingerprint, operator, ndim,
                       backend, trained_rows, created_at
                FROM model_artifacts ORDER BY id
                """
            ).fetchall()
        return [dict(row) for row in rows]

    def __len__(self) -> int:
        with self.db.lock:
            (n,) = self.db.conn.execute(
                "SELECT COUNT(*) FROM model_artifacts"
            ).fetchone()
        return int(n)
