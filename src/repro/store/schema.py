"""SQLite schema for the persistent tuning store.

Three tables, in the style of an experiment database (py_experimenter's
keyfields/resultfields run table):

* ``trials`` — append-only log, one row per tuning run.  Keyfields
  identify what was tuned (kind, distribution, operator, max level,
  accuracy ladder, machine fingerprint, seed, instances); resultfields
  record what came out (chosen cycle shape, simulated cost, wall time,
  the full plan JSON).
* ``plans`` — the registry: at most one current plan per
  (fingerprint, keyfields) combination, with hit counters so ``gc``
  and capacity planning can see what is actually reused.
* ``campaign_cells`` — one row per (machine x distribution x operator
  x level) cell of a sweep, carrying its completion status so an
  interrupted campaign resumes without redoing finished cells.

``user_version`` tracks the schema revision; opening a database written
by a newer revision fails loudly instead of corrupting it, while older
revisions are migrated in place (each step runs in one transaction, so
a crash mid-migration rolls back to the previous clean revision):

* v1 -> v2: the ``operator`` keyfield (pluggable operator layer).
  Existing rows are stamped with the implicit pre-operator default
  ``'poisson'`` and plan keys are rewritten to the operator-suffixed
  form, so every stored plan keeps resolving.
* v2 -> v3: the ``ndim`` keyfield (dimension-general multigrid).
  Existing rows are stamped with the implicit pre-3-D default ``2`` and
  plan keys gain the ``|2`` suffix, so every stored 2-D plan keeps
  resolving; 3-D plans land under their own keys.
* v3 -> v4: the distributed-fleet columns.  ``campaign_cells`` grows the
  lease protocol (owner, wall-clock expiry, attempt counter, last error)
  plus completion provenance (which worker finished the cell), and
  ``trials`` grows a structured ``provenance`` resultfield (worker,
  host, pid, attempt, duration).  Two new tables — ``campaigns`` (the
  spec a fleet worker needs to rebuild tuning keys from bare cell rows)
  and ``fleet_workers`` (heartbeats + per-worker counters) — are created
  by the base schema, so the migration itself is purely additive.
* v4 -> v5: the ``backend`` keyfield (pluggable kernel backends).
  Existing rows are stamped with the implicit pre-backend default
  ``'numpy'`` and plan keys gain the ``|numpy`` suffix, so every stored
  plan keeps resolving; plans tuned against an accelerated backend land
  under their own keys.  (Like ``ndim``, the campaign primary key is
  unchanged — ``backend`` is a spec-level column, not a grid axis.)
* v5 -> v6: the model-based tuner.  ``trials`` and ``plans`` grow a
  ``tuner`` resultfield (``'dp'`` or ``'model'``; existing rows are
  stamped with the implicit pre-model default ``'dp'``), and a new
  ``model_artifacts`` table persists fitted cost models — one current
  model per (machine fingerprint, operator, ndim, backend) — so fleet
  workers and cold machines can pull model-predicted plans without
  refitting.  ``tuner`` is provenance, not identity: plan keys are
  unchanged, so every stored plan keeps resolving.
"""

from __future__ import annotations

import sqlite3

__all__ = ["SCHEMA_VERSION", "ensure_schema"]

SCHEMA_VERSION = 6

_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    -- keyfields
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    backend             TEXT    NOT NULL DEFAULT 'numpy',
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    -- resultfields
    machine_name        TEXT,
    cycle_shape         TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    plan_json           TEXT,
    provenance          TEXT,
    tuner               TEXT    NOT NULL DEFAULT 'dp',
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now'))
);
CREATE INDEX IF NOT EXISTS idx_trials_key_v5
    ON trials (kind, distribution, operator, ndim, backend, max_level,
               accuracies, machine_fingerprint, seed, instances);

CREATE TABLE IF NOT EXISTS plans (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    plan_key            TEXT    NOT NULL UNIQUE,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    backend             TEXT    NOT NULL DEFAULT 'numpy',
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    profile_json        TEXT    NOT NULL,
    plan_json           TEXT    NOT NULL,
    tuner               TEXT    NOT NULL DEFAULT 'dp',
    hits                INTEGER NOT NULL DEFAULT 0,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now')),
    last_used_at        TEXT
);
CREATE INDEX IF NOT EXISTS idx_plans_family_v5
    ON plans (kind, distribution, operator, ndim, backend, max_level,
              accuracies, seed, instances);

CREATE TABLE IF NOT EXISTS campaign_cells (
    campaign            TEXT    NOT NULL,
    machine             TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    backend             TEXT    NOT NULL DEFAULT 'numpy',
    max_level           INTEGER NOT NULL,
    status              TEXT    NOT NULL DEFAULT 'pending',
    source              TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    completed_at        TEXT,
    -- fleet lease protocol (v4)
    lease_owner         TEXT,
    lease_expires_at    REAL,
    attempts            INTEGER NOT NULL DEFAULT 0,
    last_error          TEXT,
    worker_id           TEXT,
    PRIMARY KEY (campaign, machine, distribution, operator, max_level)
);

CREATE TABLE IF NOT EXISTS campaigns (
    name                TEXT    PRIMARY KEY,
    spec_json           TEXT    NOT NULL,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now'))
);

CREATE TABLE IF NOT EXISTS model_artifacts (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    model_key           TEXT    NOT NULL UNIQUE,
    machine_fingerprint TEXT    NOT NULL,
    operator            TEXT    NOT NULL DEFAULT 'poisson',
    ndim                INTEGER NOT NULL DEFAULT 2,
    backend             TEXT    NOT NULL DEFAULT 'numpy',
    model_json          TEXT    NOT NULL,
    provenance          TEXT,
    trained_rows        INTEGER NOT NULL DEFAULT 0,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now'))
);

CREATE TABLE IF NOT EXISTS fleet_workers (
    worker_id           TEXT    PRIMARY KEY,
    campaign            TEXT,
    host                TEXT,
    pid                 INTEGER,
    machine_fingerprint TEXT,
    started_at          REAL,
    last_heartbeat      REAL,
    cells_done          INTEGER NOT NULL DEFAULT 0,
    cells_failed        INTEGER NOT NULL DEFAULT 0,
    lease_renewals      INTEGER NOT NULL DEFAULT 0,
    requeues_claimed    INTEGER NOT NULL DEFAULT 0
);
"""

#: v1 -> v2: add the operator keyfield everywhere, defaulting existing
#: rows to the implicit pre-operator 'poisson', and rebuild
#: campaign_cells (SQLite cannot alter a primary key in place).  One
#: statement per entry so the migration can run inside a single
#: explicit transaction (executescript would autocommit each step).
_MIGRATE_V1_V2 = (
    "ALTER TABLE trials ADD COLUMN operator TEXT NOT NULL DEFAULT 'poisson'",
    "DROP INDEX IF EXISTS idx_trials_key",
    "ALTER TABLE plans ADD COLUMN operator TEXT NOT NULL DEFAULT 'poisson'",
    "DROP INDEX IF EXISTS idx_plans_family",
    "UPDATE plans SET plan_key = plan_key || '|poisson'",
    "ALTER TABLE campaign_cells RENAME TO campaign_cells_v1",
    """
    CREATE TABLE campaign_cells (
        campaign            TEXT    NOT NULL,
        machine             TEXT    NOT NULL,
        distribution        TEXT    NOT NULL,
        operator            TEXT    NOT NULL DEFAULT 'poisson',
        max_level           INTEGER NOT NULL,
        status              TEXT    NOT NULL DEFAULT 'pending',
        source              TEXT,
        simulated_cost      REAL,
        wall_seconds        REAL,
        completed_at        TEXT,
        PRIMARY KEY (campaign, machine, distribution, operator, max_level)
    )
    """,
    """
    INSERT INTO campaign_cells
        (campaign, machine, distribution, operator, max_level,
         status, source, simulated_cost, wall_seconds, completed_at)
    SELECT campaign, machine, distribution, 'poisson', max_level,
           status, source, simulated_cost, wall_seconds, completed_at
    FROM campaign_cells_v1
    """,
    "DROP TABLE campaign_cells_v1",
)


#: v2 -> v3: add the ndim keyfield everywhere, defaulting existing rows
#: to the implicit pre-3-D ``2``, and suffix plan keys to the
#: ndim-qualified form.  (``ndim`` is derivable from the operator family,
#: so the campaign primary key is unchanged — the column is additive.)
_MIGRATE_V2_V3 = (
    "ALTER TABLE trials ADD COLUMN ndim INTEGER NOT NULL DEFAULT 2",
    "DROP INDEX IF EXISTS idx_trials_key_v2",
    "ALTER TABLE plans ADD COLUMN ndim INTEGER NOT NULL DEFAULT 2",
    "DROP INDEX IF EXISTS idx_plans_family_v2",
    "UPDATE plans SET plan_key = plan_key || '|2'",
    "ALTER TABLE campaign_cells ADD COLUMN ndim INTEGER NOT NULL DEFAULT 2",
)

#: v3 -> v4: the distributed-fleet columns.  All additive — existing
#: cells stay 'pending'/'done' with zero attempts and no lease, old
#: trial rows simply have no provenance — so plan keys, campaign
#: primary keys, and every stored plan are untouched.  The new
#: ``campaigns`` / ``fleet_workers`` tables come from the base schema's
#: CREATE IF NOT EXISTS.
_MIGRATE_V3_V4 = (
    "ALTER TABLE trials ADD COLUMN provenance TEXT",
    "ALTER TABLE campaign_cells ADD COLUMN lease_owner TEXT",
    "ALTER TABLE campaign_cells ADD COLUMN lease_expires_at REAL",
    "ALTER TABLE campaign_cells ADD COLUMN attempts INTEGER NOT NULL DEFAULT 0",
    "ALTER TABLE campaign_cells ADD COLUMN last_error TEXT",
    "ALTER TABLE campaign_cells ADD COLUMN worker_id TEXT",
)

#: v4 -> v5: add the backend keyfield everywhere, defaulting existing
#: rows to the implicit pre-backend ``'numpy'``, and suffix plan keys to
#: the backend-qualified form.  (Like ``ndim``, the campaign primary key
#: is unchanged — ``backend`` is a spec-level column, not a grid axis.)
_MIGRATE_V4_V5 = (
    "ALTER TABLE trials ADD COLUMN backend TEXT NOT NULL DEFAULT 'numpy'",
    "DROP INDEX IF EXISTS idx_trials_key_v3",
    "ALTER TABLE plans ADD COLUMN backend TEXT NOT NULL DEFAULT 'numpy'",
    "DROP INDEX IF EXISTS idx_plans_family_v3",
    "UPDATE plans SET plan_key = plan_key || '|numpy'",
    "ALTER TABLE campaign_cells ADD COLUMN backend TEXT NOT NULL DEFAULT 'numpy'",
)

#: v5 -> v6: the model-based tuner.  All additive — existing trial and
#: plan rows are stamped with the implicit pre-model ``'dp'``, plan keys
#: are untouched (``tuner`` is provenance, not identity), and the new
#: ``model_artifacts`` table comes from the base schema's CREATE IF NOT
#: EXISTS, like the v4 fleet tables.
_MIGRATE_V5_V6 = (
    "ALTER TABLE trials ADD COLUMN tuner TEXT NOT NULL DEFAULT 'dp'",
    "ALTER TABLE plans ADD COLUMN tuner TEXT NOT NULL DEFAULT 'dp'",
)

#: ``from_version -> module attribute naming its statements``, applied
#: one revision at a time.  Resolved through ``globals()`` at run time so
#: tests can monkeypatch an individual migration's statement list.
_MIGRATIONS = {
    1: "_MIGRATE_V1_V2",
    2: "_MIGRATE_V2_V3",
    3: "_MIGRATE_V3_V4",
    4: "_MIGRATE_V4_V5",
    5: "_MIGRATE_V5_V6",
}


def _migrate_step(conn: sqlite3.Connection, from_version: int) -> None:
    """Run one migration step (``from_version`` -> ``from_version + 1``)
    atomically.

    SQLite DDL is transactional, so the schema changes and the version
    stamp commit together: a crash mid-migration rolls back to a clean
    ``from_version`` store that simply migrates on the next open, instead
    of a half-migrated store whose re-migration dies on duplicate columns.
    """
    conn.execute("BEGIN IMMEDIATE")
    try:
        # Re-read under the write lock: a concurrent opener may have
        # migrated between our unlocked version probe and this BEGIN,
        # and replaying the ALTERs would die on duplicate columns.
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        if version != from_version:
            conn.execute("ROLLBACK")
            return
        for statement in globals()[_MIGRATIONS[from_version]]:
            conn.execute(statement)
        conn.execute(f"PRAGMA user_version = {from_version + 1}")
        conn.execute("COMMIT")
    except BaseException:
        conn.execute("ROLLBACK")
        raise


def _migrate_v1_v2(conn: sqlite3.Connection) -> None:
    """The v1 -> v2 step by its historical name (kept for callers/tests
    that trigger one step directly; no-ops unless the store is at v1)."""
    _migrate_step(conn, 1)


def ensure_schema(conn: sqlite3.Connection) -> None:
    """Create or migrate the store tables and stamp the schema version."""
    (version,) = conn.execute("PRAGMA user_version").fetchone()
    if version > SCHEMA_VERSION:
        raise RuntimeError(
            f"store was written by schema version {version}; this code "
            f"understands up to {SCHEMA_VERSION} — refusing to open"
        )
    while version in _MIGRATIONS:
        _migrate_step(conn, version)
        (version,) = conn.execute("PRAGMA user_version").fetchone()
    conn.executescript(_SCHEMA)
    conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
    conn.commit()
