"""SQLite schema for the persistent tuning store.

Three tables, in the style of an experiment database (py_experimenter's
keyfields/resultfields run table):

* ``trials`` — append-only log, one row per tuning run.  Keyfields
  identify what was tuned (kind, distribution, max level, accuracy
  ladder, machine fingerprint, seed, instances); resultfields record
  what came out (chosen cycle shape, simulated cost, wall time, the
  full plan JSON).
* ``plans`` — the registry: at most one current plan per
  (fingerprint, keyfields) combination, with hit counters so ``gc``
  and capacity planning can see what is actually reused.
* ``campaign_cells`` — one row per (machine x distribution x level)
  cell of a sweep, carrying its completion status so an interrupted
  campaign resumes without redoing finished cells.

``user_version`` tracks the schema revision; opening a database written
by a newer revision fails loudly instead of corrupting it.
"""

from __future__ import annotations

import sqlite3

__all__ = ["SCHEMA_VERSION", "ensure_schema"]

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    -- keyfields
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    -- resultfields
    machine_name        TEXT,
    cycle_shape         TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    plan_json           TEXT,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now'))
);
CREATE INDEX IF NOT EXISTS idx_trials_key
    ON trials (kind, distribution, max_level, accuracies,
               machine_fingerprint, seed, instances);

CREATE TABLE IF NOT EXISTS plans (
    id                  INTEGER PRIMARY KEY AUTOINCREMENT,
    plan_key            TEXT    NOT NULL UNIQUE,
    kind                TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    max_level           INTEGER NOT NULL,
    accuracies          TEXT    NOT NULL,
    machine_fingerprint TEXT    NOT NULL,
    seed                TEXT    NOT NULL,
    instances           INTEGER NOT NULL,
    machine_name        TEXT,
    profile_json        TEXT    NOT NULL,
    plan_json           TEXT    NOT NULL,
    hits                INTEGER NOT NULL DEFAULT 0,
    created_at          TEXT    NOT NULL DEFAULT (strftime('%Y-%m-%dT%H:%M:%fZ', 'now')),
    last_used_at        TEXT
);
CREATE INDEX IF NOT EXISTS idx_plans_family
    ON plans (kind, distribution, max_level, accuracies, seed, instances);

CREATE TABLE IF NOT EXISTS campaign_cells (
    campaign            TEXT    NOT NULL,
    machine             TEXT    NOT NULL,
    distribution        TEXT    NOT NULL,
    max_level           INTEGER NOT NULL,
    status              TEXT    NOT NULL DEFAULT 'pending',
    source              TEXT,
    simulated_cost      REAL,
    wall_seconds        REAL,
    completed_at        TEXT,
    PRIMARY KEY (campaign, machine, distribution, max_level)
);
"""


def ensure_schema(conn: sqlite3.Connection) -> None:
    """Create the store tables (idempotent) and stamp the schema version."""
    (version,) = conn.execute("PRAGMA user_version").fetchone()
    if version > SCHEMA_VERSION:
        raise RuntimeError(
            f"store was written by schema version {version}; this code "
            f"understands up to {SCHEMA_VERSION} — refusing to open"
        )
    conn.executescript(_SCHEMA)
    conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
    conn.commit()
