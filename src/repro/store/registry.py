"""The plan registry: tune once, reuse everywhere.

PetaBricks' operational model is "tuning is performed offline ... the
autotuner generates an optimized configuration file; subsequent runs use
the saved configuration" (section 3.2.1).  :class:`PlanRegistry` is that
model made persistent and multi-machine:

* **exact hit** — a plan tuned for this machine fingerprint and tuning
  key is returned byte-identically from the database, skipping the
  entire DP pass;
* **nearest-profile fallback** — with no exact hit, the registry can
  serve the plan of the *closest* known machine (the paper's Figure 14
  cross-architecture experiment shows tuned plans transfer with modest
  slowdown, far better than re-running a heuristic);
* **tune-and-insert** — otherwise the DP runs once, the trial is logged,
  and the plan is stored for every future caller.
"""

from __future__ import annotations

import json
import math
import os
import socket
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.machines.profile import MachineProfile
from repro.store.sink import DBTrialSink, plan_cycle_shape
from repro.store.trialdb import (
    TrialDB,
    TrialRecord,
    canonical_accuracies,
    canonical_seed,
)
from repro.tuner.config import plan_from_dict, plan_to_dict
from repro.tuner.plan import DEFAULT_ACCURACIES, TunedFullMGPlan, TunedVPlan

__all__ = [
    "PlanRegistry",
    "RegistryHit",
    "TuneKey",
    "build_provenance",
    "profile_distance",
]

PLAN_KINDS = ("multigrid-v", "full-multigrid")


def build_provenance(
    worker: str | None = None,
    attempt: int = 1,
    duration_s: float | None = None,
    **extra: Any,
) -> dict[str, Any]:
    """Structured who-ran-this metadata for a tuning run.

    Every tuned plan's trial row records where the tune actually
    executed — host, pid, the fleet worker id and attempt number when
    one is involved — as first-class resultfield JSON, rather than
    burying execution context in ``serve_swap``-style plan metadata.
    """
    out: dict[str, Any] = {
        "worker": worker,
        "host": socket.gethostname(),
        "pid": os.getpid(),
        "attempt": int(attempt),
    }
    if duration_s is not None:
        out["duration_s"] = float(duration_s)
    out.update(extra)
    return out


@dataclass(frozen=True)
class TuneKey:
    """Keyfields identifying one tuning problem (machine excluded).

    ``operator`` is the canonical operator spec string (see
    :func:`repro.operators.parse_operator`); it defaults to the
    constant-coefficient Poisson operator every pre-operator-layer plan
    implicitly meant, and is normalized on construction so equivalent
    spellings produce the same storage key.  ``ndim`` is the grid
    dimensionality; ``None`` derives it from the operator's family, and
    an explicit value must match it (3-D plans can never shadow 2-D
    ones, or vice versa).  ``backend`` is the kernel backend the tune
    prices against; ``"auto"`` resolves to the best backend available on
    this host at construction (so the stored key always names a concrete
    backend), and the default ``'numpy'`` is what every pre-backend plan
    implicitly meant.
    """

    kind: str = "multigrid-v"
    distribution: str = "unbiased"
    max_level: int = 6
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES
    seed: int | None = 0
    instances: int = 3
    operator: str = "poisson"
    ndim: int | None = None
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.kind not in PLAN_KINDS:
            raise ValueError(f"kind must be one of {PLAN_KINDS}, not {self.kind!r}")
        from repro.kernels import resolve_backend
        from repro.operators.spec import parse_operator

        spec = parse_operator(self.operator)
        object.__setattr__(self, "operator", spec.canonical())
        if self.ndim is None:
            object.__setattr__(self, "ndim", spec.ndim)
        elif self.ndim != spec.ndim:
            raise ValueError(
                f"ndim={self.ndim} does not match operator "
                f"{spec.canonical()!r} (a {spec.ndim}-D family)"
            )
        object.__setattr__(self, "backend", resolve_backend(self.backend))

    def storage_key(self, fingerprint: str) -> str:
        return "|".join(
            [
                fingerprint,
                self.kind,
                self.distribution,
                str(self.max_level),
                canonical_accuracies(self.accuracies),
                canonical_seed(self.seed),
                str(self.instances),
                self.operator,
                str(self.ndim),
                self.backend,
            ]
        )


@dataclass(frozen=True)
class RegistryHit:
    """Outcome of a registry lookup-or-tune."""

    plan: TunedVPlan | TunedFullMGPlan
    #: 'exact' (this fingerprint), 'nearest' (closest known machine), or
    #: 'tuned' (DP ran in this call)
    source: str
    fingerprint: str
    plan_json: str
    #: profile distance of the serving machine (0.0 for exact/tuned)
    distance: float = 0.0
    machine_name: str | None = None


def _flatten(value: Any, path: str, out: dict[str, Any]) -> None:
    """Flatten nested dicts/lists to (dotted-path, scalar) pairs so every
    parameter — including the per-op shape tables — enters the metric."""
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(value[key], f"{path}.{key}", out)
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _flatten(item, f"{path}[{i}]", out)
    else:
        out[path] = value


def profile_distance(a: dict[str, Any], b: dict[str, Any]) -> float:
    """Log-scale RMS distance between two profile content dicts.

    Rates and capacities differ across machines by orders of magnitude,
    so each scalar contributes ``|log10(a/b)|``; nearest-profile lookup
    minimizes this over stored plans.  Scalars only one side defines
    count as fully different, so a missing or extra field cannot shrink
    the distance.
    """
    flat_a: dict[str, Any] = {}
    flat_b: dict[str, Any] = {}
    _flatten(a, "", flat_a)
    _flatten(b, "", flat_b)
    total = 0.0
    count = 0
    for name in sorted(set(flat_a) | set(flat_b)):
        va, vb = flat_a.get(name), flat_b.get(name)
        count += 1
        if va is None or vb is None:
            total += 1.0
        elif isinstance(va, bool) or isinstance(vb, bool):
            total += 0.0 if va == vb else 1.0
        elif isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            if va > 0 and vb > 0:
                total += math.log10(va / vb) ** 2
            elif va != vb:
                total += 1.0
        elif va != vb:
            total += 1.0
    if count == 0:
        return math.inf
    return math.sqrt(total / count)


class PlanRegistry:
    """Content-addressed store of tuned plans over a :class:`TrialDB`.

    Registry methods serialize their database touches on the TrialDB's
    reentrant lock, so one registry may be shared across threads (the
    solve server's workers and background tuner do); the DP tune inside
    :meth:`get_or_tune` runs *outside* the lock, so concurrent lookups
    never wait behind a tune.
    """

    def __init__(self, db: TrialDB | str | Path = ":memory:") -> None:
        self.db = db if isinstance(db, TrialDB) else TrialDB(db)
        self.sink = DBTrialSink(self.db)

    # -- lookups ----------------------------------------------------------

    def get(
        self,
        profile: MachineProfile,
        key: TuneKey,
        allow_nearest: bool = True,
        max_distance: float | None = None,
    ) -> RegistryHit | None:
        """The stored plan for (profile, key), or ``None``.

        Exact fingerprint matches win; otherwise, when ``allow_nearest``,
        the closest stored profile with the same tuning key serves (if
        within ``max_distance``, when given).
        """
        fingerprint = profile.fingerprint()
        with self.db.lock:
            row = self.db.conn.execute(
                "SELECT * FROM plans WHERE plan_key = ?",
                (key.storage_key(fingerprint),),
            ).fetchone()
        if row is not None:
            self._touch(row["id"])
            return RegistryHit(
                plan=plan_from_dict(json.loads(row["plan_json"])),
                source="exact",
                fingerprint=fingerprint,
                plan_json=row["plan_json"],
                machine_name=row["machine_name"],
            )
        if not allow_nearest:
            return None
        return self._nearest(profile, key, max_distance)

    def _nearest(
        self,
        profile: MachineProfile,
        key: TuneKey,
        max_distance: float | None,
    ) -> RegistryHit | None:
        mine = profile.to_dict()
        with self.db.lock:
            rows = self.db.conn.execute(
                """
                SELECT * FROM plans
                WHERE kind = ? AND distribution = ? AND operator = ? AND ndim = ?
                  AND backend = ? AND max_level = ? AND accuracies = ? AND seed = ?
                  AND instances = ?
                """,
                (
                    key.kind,
                    key.distribution,
                    key.operator,
                    key.ndim,
                    key.backend,
                    key.max_level,
                    canonical_accuracies(key.accuracies),
                    canonical_seed(key.seed),
                    key.instances,
                ),
            ).fetchall()
        best_row, best_dist = None, math.inf
        for row in rows:
            dist = profile_distance(mine, json.loads(row["profile_json"]))
            if dist < best_dist:
                best_row, best_dist = row, dist
        if best_row is None:
            return None
        if max_distance is not None and best_dist > max_distance:
            return None
        self._touch(best_row["id"])
        return RegistryHit(
            plan=plan_from_dict(json.loads(best_row["plan_json"])),
            source="nearest",
            fingerprint=best_row["machine_fingerprint"],
            plan_json=best_row["plan_json"],
            distance=best_dist,
            machine_name=best_row["machine_name"],
        )

    def _touch(self, plan_id: int) -> None:
        # Best-effort: the hit counter is telemetry, and lookups must stay
        # effectively read-only — never fail (or block on the single-writer
        # lock, e.g. during a concurrent VACUUM) just to bump it.
        with self.db.lock:
            try:
                self.db.conn.execute(
                    """
                    UPDATE plans SET hits = hits + 1,
                        last_used_at = strftime('%Y-%m-%dT%H:%M:%fZ', 'now')
                    WHERE id = ?
                    """,
                    (plan_id,),
                )
                self.db.conn.commit()
            except sqlite3.OperationalError:
                self.db.conn.rollback()

    # -- writes -----------------------------------------------------------

    def put(
        self,
        profile: MachineProfile,
        key: TuneKey,
        plan: TunedVPlan | TunedFullMGPlan,
    ) -> str:
        """Store (or replace) the plan for (profile, key); returns its
        canonical JSON."""
        fingerprint = profile.fingerprint()
        plan_json = json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":"))
        tuner_name = str(plan.metadata.get("tuner", "dp"))

        def upsert(conn: sqlite3.Connection) -> None:
            conn.execute(
                """
                INSERT INTO plans (plan_key, kind, distribution, operator, ndim,
                                   backend, max_level, accuracies,
                                   machine_fingerprint, seed, instances,
                                   machine_name, profile_json, plan_json, tuner)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (plan_key) DO UPDATE SET
                    plan_json = excluded.plan_json,
                    profile_json = excluded.profile_json,
                    machine_name = excluded.machine_name,
                    tuner = excluded.tuner
                """,
                (
                    key.storage_key(fingerprint),
                    key.kind,
                    key.distribution,
                    key.operator,
                    key.ndim,
                    key.backend,
                    key.max_level,
                    canonical_accuracies(key.accuracies),
                    fingerprint,
                    canonical_seed(key.seed),
                    key.instances,
                    profile.name,
                    json.dumps(profile.to_dict(), sort_keys=True),
                    plan_json,
                    tuner_name,
                ),
            )
            conn.commit()

        self.db.write(upsert)
        return plan_json

    # -- the main entry point ---------------------------------------------

    def get_or_tune(
        self,
        profile: MachineProfile,
        key: TuneKey | None = None,
        *,
        allow_nearest: bool = True,
        max_distance: float | None = None,
        tuner: Callable[[], TunedVPlan | TunedFullMGPlan] | str | None = None,
        record_trial: bool = True,
        jobs: int | None = None,
        provenance: dict[str, Any] | None = None,
        **key_fields: Any,
    ) -> RegistryHit:
        """Serve a plan: exact hit, nearest-profile fallback, or tune.

        ``key`` can be given directly or assembled from keyword fields
        (``kind=, distribution=, max_level=, ...``).  ``tuner`` overrides
        how a cold plan is produced (tests count invocations through it):
        a callable runs as-is, ``"model"`` runs the learned-cost-model BO
        search warm-started from this store's accumulated trials (see
        :func:`repro.modeltuner.warmstart.model_plan_for_key`), and
        ``None`` / ``"dp"`` runs the paper's exhaustive DP tuner for
        ``key.kind``, fanning candidate evaluations across ``jobs``
        worker processes when ``jobs`` > 1 (the tuned plan is identical
        either way).

        ``provenance`` overrides the structured execution metadata
        stamped on a cold tune's trial row (fleet workers pass their
        worker id and attempt); by default the local host/pid record
        from :func:`build_provenance` is used.
        """
        if key is None:
            key = TuneKey(**key_fields)
        elif key_fields:
            raise TypeError("pass either a TuneKey or keyword fields, not both")
        hit = self.get(profile, key, allow_nearest, max_distance)
        if hit is not None:
            return hit
        if isinstance(tuner, str):
            if tuner == "model":
                from repro.modeltuner.warmstart import model_plan_for_key

                registry, the_key = self, key
                tuner = lambda: model_plan_for_key(  # noqa: E731
                    registry, profile, the_key, jobs=jobs
                )
            elif tuner == "dp":
                tuner = None
            else:
                raise ValueError(f"unknown tuner {tuner!r}; use 'dp' or 'model'")
        from repro.obs.runtime import get_tracer

        start = time.perf_counter()
        with get_tracer().span(
            "registry.tune",
            kind=key.kind,
            operator=key.operator,
            distribution=key.distribution,
            max_level=key.max_level,
            backend=key.backend,
        ):
            plan = (tuner or (lambda: _default_tuner(profile, key, jobs=jobs)))()
        wall = time.perf_counter() - start
        return self.record_tuned_plan(
            profile, key, plan, wall, record_trial=record_trial,
            provenance=provenance,
        )

    def record_tuned_plan(
        self,
        profile: MachineProfile,
        key: TuneKey,
        plan: TunedVPlan | TunedFullMGPlan,
        wall_seconds: float,
        record_trial: bool = True,
        provenance: dict[str, Any] | None = None,
    ) -> RegistryHit:
        """Store a freshly tuned plan and log its trial (one commit path
        shared by :meth:`get_or_tune` and out-of-band tuners such as the
        solve server's background jobs).  The trial row carries
        structured ``provenance`` JSON — who tuned, where, attempt
        number, duration — defaulting to this process's identity."""
        plan_json = self.put(profile, key, plan)
        if provenance is None:
            provenance = build_provenance(duration_s=wall_seconds)
        else:
            provenance = dict(provenance)
            provenance.setdefault("duration_s", wall_seconds)
        if record_trial:
            self.sink.record(
                TrialRecord(
                    kind=key.kind,
                    distribution=key.distribution,
                    operator=key.operator,
                    ndim=key.ndim,
                    backend=key.backend,
                    max_level=key.max_level,
                    accuracies=tuple(key.accuracies),
                    machine_fingerprint=profile.fingerprint(),
                    seed=key.seed,
                    instances=key.instances,
                    machine_name=profile.name,
                    cycle_shape=plan_cycle_shape(plan),
                    simulated_cost=plan.time_on(
                        profile, plan.max_level, plan.num_accuracies - 1
                    ),
                    wall_seconds=wall_seconds,
                    provenance=json.dumps(
                        provenance, sort_keys=True, separators=(",", ":")
                    ),
                    tuner=str(plan.metadata.get("tuner", "dp")),
                    plan_json=plan_json,
                )
            )
        return RegistryHit(
            plan=plan,
            source="tuned",
            fingerprint=profile.fingerprint(),
            plan_json=plan_json,
            machine_name=profile.name,
        )

    # -- introspection ----------------------------------------------------

    def contents(self) -> dict[str, str]:
        """``plan_key -> canonical plan JSON`` for every stored plan.

        Volatile columns (row ids, timestamps, hit counters) are
        excluded, so two registries warmed by different execution
        strategies — e.g. a serial and a parallel campaign — compare
        equal exactly when they serve identical plans for identical
        keys.
        """
        with self.db.lock:
            rows = self.db.conn.execute(
                "SELECT plan_key, plan_json FROM plans ORDER BY plan_key"
            ).fetchall()
        return {row["plan_key"]: row["plan_json"] for row in rows}

    def plans(self, operator: str | None = None) -> list[dict[str, Any]]:
        """Summary rows of stored plans (for ``store ls``).

        ``operator`` filters to one operator family/spec; any spelling
        is normalized to the canonical form rows are stored under.
        """
        query = """
            SELECT kind, distribution, operator, ndim, backend, max_level,
                   machine_name, machine_fingerprint, seed, instances, hits,
                   created_at, last_used_at
            FROM plans
            """
        params: tuple[Any, ...] = ()
        if operator is not None:
            from repro.operators.spec import parse_operator

            query += " WHERE operator = ?"
            params = (parse_operator(operator).canonical(),)
        with self.db.lock:
            rows = self.db.conn.execute(query + " ORDER BY id", params).fetchall()
        return [dict(row) for row in rows]

    def __len__(self) -> int:
        with self.db.lock:
            (n,) = self.db.conn.execute("SELECT COUNT(*) FROM plans").fetchone()
        return int(n)


def _default_tuner(
    profile: MachineProfile, key: TuneKey, jobs: int | None = None
) -> TunedVPlan | TunedFullMGPlan:
    """Cold path: run the DP tuner(s) exactly as core.autotune does.

    ``jobs`` > 1 evaluates candidate trials on a process pool shared by
    the V-cycle and (for full-MG keys) the full-MG pass; trial tasks are
    deterministically seeded, so the result matches a serial tune.
    """
    from repro.tuner.dp import VCycleTuner
    from repro.tuner.full_mg import FullMGTuner
    from repro.tuner.timing import CostModelTiming
    from repro.tuner.training import TrainingData

    executor = None
    if jobs is not None and jobs > 1:
        from repro.parallel import resolve_executor

        executor = resolve_executor(jobs)
    try:
        training = TrainingData(
            distribution=key.distribution,
            instances=key.instances,
            seed=key.seed,
            operator=key.operator,
        )
        vplan = VCycleTuner(
            max_level=key.max_level,
            accuracies=tuple(key.accuracies),
            training=training,
            timing=CostModelTiming(profile),
            keep_audit=False,
            trial_executor=executor,
            backend=key.backend,
        ).tune()
        if key.kind == "multigrid-v":
            return vplan
        return FullMGTuner(
            vplan=vplan,
            training=training,
            timing=CostModelTiming(profile),
            keep_audit=False,
            trial_executor=executor,
        ).tune(key.max_level)
    finally:
        if executor is not None:
            executor.close()
