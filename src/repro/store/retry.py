"""Retry-with-backoff for contended SQLite writes.

WAL mode allows one writer at a time; ``PRAGMA busy_timeout`` makes a
blocked writer wait inside SQLite, but the timeout can still elapse
under a long-running transaction (a VACUUM, a slow migration, a stalled
fleet worker holding ``BEGIN IMMEDIATE``), at which point SQLite raises
``sqlite3.OperationalError: database is locked``.  Every store write
path funnels through :func:`run_with_retry`, which retries exactly
those errors with exponential backoff instead of surfacing a transient
lock as a failed tuning run.

Anything else — constraint violations, malformed SQL, disk errors —
propagates immediately: only contention is transient.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = ["DEFAULT_RETRY", "RetryPolicy", "is_locked_error", "run_with_retry"]

T = TypeVar("T")

#: Substrings of ``sqlite3.OperationalError`` messages that mean "another
#: writer holds the lock right now" (transient, worth retrying).
_LOCKED_MARKERS = ("database is locked", "database table is locked", "database is busy")


def is_locked_error(exc: BaseException) -> bool:
    """True when ``exc`` is SQLite reporting write contention."""
    return isinstance(exc, sqlite3.OperationalError) and any(
        marker in str(exc) for marker in _LOCKED_MARKERS
    )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for locked-database retries.

    ``retries`` counts re-attempts after the first try, each preceded by
    a sleep of ``base_delay * 2**attempt`` capped at ``max_delay``.
    """

    retries: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, not {self.retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")

    def delay(self, attempt: int) -> float:
        """Backoff before re-attempt number ``attempt`` (0-based)."""
        return min(self.base_delay * (2.0**attempt), self.max_delay)


#: Shared default: ~6 tries over ~1.5 s of cumulative backoff.
DEFAULT_RETRY = RetryPolicy()


def run_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy = DEFAULT_RETRY,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn``, retrying locked-database errors per ``policy``.

    ``sleep`` is injectable (tests pass ``ManualClock.sleep``) and
    ``on_retry(attempt, exc)`` fires before each backoff, so callers can
    count contention in telemetry.  The final failure re-raises the
    underlying ``sqlite3.OperationalError`` unchanged.
    """
    for attempt in range(policy.retries + 1):
        try:
            return fn()
        except sqlite3.OperationalError as exc:
            if not is_locked_error(exc) or attempt == policy.retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(attempt))
    raise AssertionError("unreachable")  # pragma: no cover
