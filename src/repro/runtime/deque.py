"""Thread-private work deque with owner/thief ends.

Owner pushes and pops at the bottom (LIFO — depth-first order maximizes
locality, section 3.2.3); thieves steal from the top (FIFO — stealing the
oldest task tends to take the largest remaining subtree, the Cilk
heuristic).  A lock per deque keeps the implementation simple; contention
is low because steals are rare when the owner stays busy.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Generic, TypeVar

__all__ = ["WorkDeque"]

T = TypeVar("T")


class WorkDeque(Generic[T]):
    def __init__(self) -> None:
        self._items: deque[T] = deque()
        self._lock = threading.Lock()

    def push(self, item: T) -> None:
        """Owner: push at the bottom."""
        with self._lock:
            self._items.append(item)

    def pop(self) -> T | None:
        """Owner: pop from the bottom (most recently pushed)."""
        with self._lock:
            if self._items:
                return self._items.pop()
            return None

    def steal(self) -> T | None:
        """Thief: take from the top (least recently pushed)."""
        with self._lock:
            if self._items:
                return self._items.popleft()
            return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
