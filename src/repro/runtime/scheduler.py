"""Work-stealing execution of task graphs with real threads.

Each worker owns a deque; completing a task decrements its dependents'
pending-dependency counters, and tasks whose counters hit zero are pushed
onto the finishing worker's deque (depth-first, locality-greedy order).
Idle workers steal from random victims.  NumPy kernels release the GIL, so
on a multi-core host grid-sized tasks genuinely overlap; on the single-core
reproduction container the scheduler is exercised for correctness and the
timing figures come from :mod:`repro.runtime.simsched`.
"""

from __future__ import annotations

import random
import threading
from typing import Sequence

from repro.runtime.deque import WorkDeque
from repro.runtime.task import Task, TaskGraph

__all__ = ["SerialScheduler", "WorkStealingScheduler"]


class SerialScheduler:
    """Deterministic topological execution (the reference semantics)."""

    def run(self, graph: TaskGraph) -> list[str]:
        """Execute all tasks; returns completion order."""
        order = graph.topological_order()
        for t in order:
            t.run()
        return [t.name for t in order]


class WorkStealingScheduler:
    """Threads + private deques + random-victim stealing."""

    def __init__(self, workers: int = 4, seed: int | None = 0) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.seed = seed

    def run(self, graph: TaskGraph) -> list[str]:
        """Execute all tasks; returns completion order (non-deterministic
        across runs, but always a valid topological order)."""
        graph.validate()
        tasks = graph.tasks()
        if not tasks:
            return []
        pending: dict[str, int] = {t.name: len(t.deps) for t in tasks}
        dependents: dict[str, list[Task]] = {t.name: [] for t in tasks}
        for t in tasks:
            for d in t.deps:
                dependents[d].append(t)
        counter_lock = threading.Lock()
        deques: list[WorkDeque[Task]] = [WorkDeque() for _ in range(self.workers)]
        completed: list[str] = []
        remaining = len(tasks)
        done = threading.Event()
        errors: list[BaseException] = []

        roots = [t for t in tasks if not t.deps]
        for i, t in enumerate(roots):
            deques[i % self.workers].push(t)

        def finish(task: Task, worker: int) -> None:
            nonlocal remaining
            newly_ready: list[Task] = []
            with counter_lock:
                completed.append(task.name)
                remaining -= 1
                if remaining == 0:
                    done.set()
                for dep in dependents[task.name]:
                    pending[dep.name] -= 1
                    if pending[dep.name] == 0:
                        newly_ready.append(dep)
            for t in newly_ready:
                deques[worker].push(t)

        def worker_loop(worker: int) -> None:
            rng = random.Random(None if self.seed is None else self.seed + worker)
            my = deques[worker]
            while not done.is_set():
                task = my.pop()
                if task is None:
                    # Steal from a random victim.
                    victims = [i for i in range(self.workers) if i != worker]
                    rng.shuffle(victims)
                    for v in victims:
                        task = deques[v].steal()
                        if task is not None:
                            break
                if task is None:
                    if done.wait(timeout=0.0005):
                        return
                    continue
                try:
                    task.run()
                except BaseException as exc:  # propagate to the caller
                    errors.append(exc)
                    done.set()
                    return
                finish(task, worker)

        threads = [
            threading.Thread(target=worker_loop, args=(i,), daemon=True)
            for i in range(self.workers)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if errors:
            raise errors[0]
        if remaining:
            raise RuntimeError(f"deadlock: {remaining} tasks never became ready")
        return completed


def validate_completion_order(graph: TaskGraph, order: Sequence[str]) -> bool:
    """True if ``order`` respects every dependency edge (test helper)."""
    position = {name: i for i, name in enumerate(order)}
    for t in graph.tasks():
        for d in t.deps:
            if position[d] > position[t.name]:
                return False
    return len(order) == len(graph)
