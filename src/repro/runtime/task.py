"""Task graph: the unit of scheduling.

A :class:`Task` is a callable with explicit dependencies; a
:class:`TaskGraph` owns a set of tasks and validates acyclicity.  Both the
real work-stealing scheduler and the virtual-time simulator consume the
same graphs, so correctness tests on the former transfer to the timing
model of the latter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import networkx as nx

__all__ = ["Task", "TaskGraph"]


@dataclass
class Task:
    """One schedulable work item.

    ``cost`` is the simulated duration (seconds) used by the virtual-time
    scheduler; the real scheduler ignores it.  ``fn`` may be None for pure
    synchronization nodes.
    """

    name: str
    fn: Callable[[], None] | None = None
    deps: tuple[str, ...] = ()
    cost: float = 0.0

    def run(self) -> None:
        if self.fn is not None:
            self.fn()


class TaskGraph:
    """A DAG of named tasks."""

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}

    def add(
        self,
        name: str,
        fn: Callable[[], None] | None = None,
        deps: Iterable[str] = (),
        cost: float = 0.0,
    ) -> Task:
        """Add a task; dependencies must already exist."""
        if name in self._tasks:
            raise ValueError(f"duplicate task name {name!r}")
        deps = tuple(deps)
        for d in deps:
            if d not in self._tasks:
                raise ValueError(f"task {name!r} depends on unknown task {d!r}")
        task = Task(name=name, fn=fn, deps=deps, cost=cost)
        self._tasks[name] = task
        return task

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def task(self, name: str) -> Task:
        return self._tasks[name]

    def tasks(self) -> list[Task]:
        return list(self._tasks.values())

    def to_networkx(self) -> "nx.DiGraph":
        """Dependency digraph (edges point dep -> dependent)."""
        g = nx.DiGraph()
        for t in self._tasks.values():
            g.add_node(t.name)
            for d in t.deps:
                g.add_edge(d, t.name)
        return g

    def validate(self) -> None:
        """Raise if the graph has a dependency cycle."""
        g = self.to_networkx()
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise ValueError(f"task graph has a cycle: {cycle}")

    def topological_order(self) -> list[Task]:
        self.validate()
        order = nx.topological_sort(self.to_networkx())
        return [self._tasks[name] for name in order]

    def critical_path_cost(self) -> float:
        """Longest cost-weighted path — the lower bound on parallel time."""
        self.validate()
        g = self.to_networkx()
        longest: dict[str, float] = {}
        for name in nx.topological_sort(g):
            base = max((longest[p] for p in g.predecessors(name)), default=0.0)
            longest[name] = base + self._tasks[name].cost
        return max(longest.values(), default=0.0)

    def total_cost(self) -> float:
        """Sum of all task costs — the serial execution time."""
        return sum(t.cost for t in self._tasks.values())
