"""Block decomposition of grid operations into task graphs.

A red-black sweep parallelizes as: all red-block tasks, a barrier, all
black-block tasks.  Row-block partitioning keeps each task's working set
contiguous (cache-friendly, matching the data-parallel rules PetaBricks
generates for stencil transforms).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.machines.profile import MachineProfile
from repro.relax.sor import _color_slices
from repro.runtime.task import TaskGraph
from repro.grids.grid import mesh_width

__all__ = ["partition_rows", "sweep_task_graph"]


def partition_rows(n: int, blocks: int) -> list[tuple[int, int]]:
    """Split interior rows [1, n-1) into ``blocks`` contiguous spans.

    Returns (start, stop) row-index pairs; fewer spans come back when there
    are fewer interior rows than requested blocks.
    """
    if blocks < 1:
        raise ValueError("blocks must be >= 1")
    interior = n - 2
    blocks = min(blocks, interior)
    bounds = np.linspace(1, n - 1, blocks + 1).astype(int)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(blocks)
        if bounds[i + 1] > bounds[i]
    ]


def _sweep_block(
    u: np.ndarray, b: np.ndarray, omega: float, parity: int, rows: tuple[int, int]
) -> None:
    """One colour phase of red-black SOR restricted to a row block.

    Operates on a row-slab view widened by one halo row on each side so the
    stencil sees its neighbours; only rows inside the block are written.
    """
    n = u.shape[0]
    h = mesh_width(n)
    h2 = h * h
    lo, hi = rows
    quarter_omega = 0.25 * omega
    for crows, cols, north, south, west, east in _color_slices(n, parity):
        rstart, rstop, rstep = crows.indices(n)[0], crows.indices(n)[1], 2
        # Clip this colour's rows to [lo, hi).
        first = rstart if rstart >= lo else rstart + ((lo - rstart + 1) // 2) * 2
        if first < lo:
            first += 2
        last = min(rstop, hi)
        if first >= last:
            continue
        rsel = slice(first, last, rstep)
        nsel = slice(first - 1, last - 1, rstep)
        ssel = slice(first + 1, last + 1, rstep)
        c = u[rsel, cols]
        stencil = u[nsel, cols] + u[ssel, cols]
        stencil += u[rsel, west]
        stencil += u[rsel, east]
        stencil += h2 * b[rsel, cols]
        c *= 1.0 - omega
        c += quarter_omega * stencil


def sweep_task_graph(
    u: np.ndarray,
    b: np.ndarray,
    omega: float,
    blocks: int,
    profile: MachineProfile | None = None,
    graph: TaskGraph | None = None,
    prefix: str = "sweep",
    deps: Sequence[str] = (),
) -> TaskGraph:
    """Task graph for one red-black SOR sweep split into row blocks.

    Red-phase tasks are independent; every black-phase task depends on all
    red tasks (the colour barrier).  When ``profile`` is given, each task
    carries its simulated cost (a 1/blocks share of the sweep's serial
    stencil time, minus the per-op overhead which the scheduler models
    separately).
    """
    n = u.shape[0]
    graph = graph or TaskGraph()
    spans = partition_rows(n, blocks)
    if profile is not None:
        serial = profile.stencil_time("relax", n, threads=1) - profile.op_overhead
        cost = max(serial, 0.0) / (2 * len(spans))
    else:
        cost = 0.0
    red_names = []
    for i, span in enumerate(spans):
        name = f"{prefix}-red-{i}"
        graph.add(
            name,
            fn=_make_block_fn(u, b, omega, 0, span),
            deps=deps,
            cost=cost,
        )
        red_names.append(name)
    for i, span in enumerate(spans):
        graph.add(
            f"{prefix}-black-{i}",
            fn=_make_block_fn(u, b, omega, 1, span),
            deps=red_names,
            cost=cost,
        )
    return graph


def _make_block_fn(u, b, omega, parity, span) -> Callable[[], None]:
    def fn() -> None:
        _sweep_block(u, b, omega, parity, span)

    return fn
