"""Virtual-time simulation of work-stealing execution.

Replays a task graph on P virtual workers: an idle worker takes any ready
task (greedy list scheduling, the behaviour work stealing converges to when
steals are cheap), advancing per-worker clocks by task cost plus a per-task
scheduling overhead.  Used for the parallel scalability results (Figure 9)
and validated against the analytic model in tests: greedy scheduling is
within 2x of optimal (Graham's bound) and exact for the wide, uniform task
graphs grid sweeps produce.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.runtime.task import TaskGraph

__all__ = ["SimReport", "SimulatedScheduler"]


@dataclass(frozen=True)
class SimReport:
    """Outcome of a simulated run."""

    makespan: float
    serial_time: float
    critical_path: float
    workers: int
    completion_order: tuple[str, ...]

    @property
    def speedup(self) -> float:
        return self.serial_time / self.makespan if self.makespan > 0 else 1.0

    @property
    def efficiency(self) -> float:
        return self.speedup / self.workers


class SimulatedScheduler:
    """Greedy list scheduler over virtual time.

    ``steal_overhead`` is added to every task pickup (models deque
    operations and steal attempts); ``dispatch_overhead`` is charged when a
    task's dependencies complete (models the ready-queue bookkeeping).
    """

    def __init__(
        self,
        workers: int,
        steal_overhead: float = 0.0,
        dispatch_overhead: float = 0.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.steal_overhead = steal_overhead
        self.dispatch_overhead = dispatch_overhead

    def run(self, graph: TaskGraph) -> SimReport:
        """Simulate; tasks are *not* executed (costs only)."""
        graph.validate()
        tasks = {t.name: t for t in graph.tasks()}
        if not tasks:
            return SimReport(0.0, 0.0, 0.0, self.workers, ())
        pending = {t.name: len(t.deps) for t in tasks.values()}
        dependents: dict[str, list[str]] = {name: [] for name in tasks}
        for t in tasks.values():
            for d in t.deps:
                dependents[d].append(t.name)

        # (ready_time, seq, name): FIFO among equally ready tasks.
        ready: list[tuple[float, int, str]] = []
        seq = 0
        for t in tasks.values():
            if not t.deps:
                heapq.heappush(ready, (0.0, seq, t.name))
                seq += 1
        # (free_time, worker_id)
        workers = [(0.0, w) for w in range(self.workers)]
        heapq.heapify(workers)
        finish_events: list[tuple[float, int, str]] = []
        order: list[str] = []
        completed = 0
        makespan = 0.0

        while completed < len(tasks):
            if ready:
                ready_time, _, name = heapq.heappop(ready)
                free_time, wid = heapq.heappop(workers)
                start = max(ready_time, free_time) + self.steal_overhead
                end = start + tasks[name].cost
                heapq.heappush(workers, (end, wid))
                heapq.heappush(finish_events, (end, seq, name))
                seq += 1
            else:
                if not finish_events:
                    raise RuntimeError("deadlock in simulated schedule")
                end, _, name = heapq.heappop(finish_events)
                order.append(name)
                completed += 1
                makespan = max(makespan, end)
                for dep in dependents[name]:
                    pending[dep] -= 1
                    if pending[dep] == 0:
                        heapq.heappush(ready, (end + self.dispatch_overhead, seq, dep))
                        seq += 1
        return SimReport(
            makespan=makespan,
            serial_time=graph.total_cost(),
            critical_path=graph.critical_path_cost(),
            workers=self.workers,
            completion_order=tuple(order),
        )
