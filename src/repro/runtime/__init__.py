"""Parallel runtime substrate (the PetaBricks runtime library, section 3.2.3).

"The runtime scheduler dynamically schedules tasks (that have their input
dependencies satisfied) across processors ...  Following the approach taken
by Cilk, we distribute work with thread-private deques and a task stealing
protocol."

Components:

* :class:`TaskGraph` / :class:`Task` — dependency DAG of work items.
* :class:`WorkStealingScheduler` — real threads, thread-private deques,
  random-victim stealing.  Correct on any machine; real speedup requires
  multiple cores (the reproduction container has one, so performance
  *figures* use the simulator below — see DESIGN.md substitutions).
* :class:`SimulatedScheduler` — executes the same task graphs on P virtual
  workers in virtual time, with per-task durations from a machine profile.
  Produces the paper's parallel scalability results deterministically.
* :func:`partition_rows` — block decomposition of grid sweeps into tasks.
"""

from repro.runtime.task import Task, TaskGraph
from repro.runtime.deque import WorkDeque
from repro.runtime.scheduler import SerialScheduler, WorkStealingScheduler
from repro.runtime.simsched import SimReport, SimulatedScheduler
from repro.runtime.partition import partition_rows, sweep_task_graph

__all__ = [
    "SerialScheduler",
    "SimReport",
    "SimulatedScheduler",
    "Task",
    "TaskGraph",
    "WorkDeque",
    "WorkStealingScheduler",
    "partition_rows",
    "sweep_task_graph",
]
