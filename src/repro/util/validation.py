"""Grid-size validation helpers.

The paper assumes all grids have N = 2^k + 1 points on a side for a positive
integer k (the *level*).  Level 1 is the 3x3 base case solved directly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SUPPORTED_NDIMS",
    "check_cube_grid",
    "check_grid_size",
    "check_ndim",
    "check_square_grid",
    "is_grid_size",
    "level_of_size",
    "size_of_level",
]

#: Grid dimensionalities the solver stack supports end-to-end.
SUPPORTED_NDIMS = (2, 3)


def check_ndim(ndim: int) -> int:
    """Validate a grid dimensionality and return it."""
    if ndim not in SUPPORTED_NDIMS:
        raise ValueError(f"ndim must be one of {SUPPORTED_NDIMS}, got {ndim}")
    return ndim


def size_of_level(level: int) -> int:
    """Grid points per side at ``level``: N = 2**level + 1.

    >>> size_of_level(1), size_of_level(5)
    (3, 33)
    """
    if level < 1:
        raise ValueError(f"level must be >= 1, got {level}")
    return (1 << level) + 1


def level_of_size(n: int) -> int:
    """Inverse of :func:`size_of_level`; raises if ``n`` is not 2**k + 1."""
    if n < 3:
        raise ValueError(f"grid size must be >= 3, got {n}")
    k = (n - 1).bit_length() - 1
    if (1 << k) + 1 != n:
        raise ValueError(f"grid size must be 2**k + 1 for integer k >= 1, got {n}")
    return k


def is_grid_size(n: int) -> bool:
    """True if ``n`` is a valid multigrid size 2**k + 1 with k >= 1."""
    try:
        level_of_size(n)
    except ValueError:
        return False
    return True


def check_grid_size(n: int) -> int:
    """Validate ``n`` and return its level."""
    return level_of_size(n)


def check_square_grid(a: np.ndarray, name: str = "grid") -> int:
    """Validate that ``a`` is a square 2-D float array of size 2**k+1.

    Returns the grid's level.
    """
    if a.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got ndim={a.ndim}")
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"{name} must be square, got shape {a.shape}")
    if not np.issubdtype(a.dtype, np.floating):
        raise TypeError(f"{name} must be a float array, got dtype {a.dtype}")
    return level_of_size(a.shape[0])


def check_cube_grid(a: np.ndarray, name: str = "grid") -> int:
    """Validate that ``a`` is a cube-shaped float array of side 2**k+1 in
    any supported dimensionality (2-D square or 3-D cube).

    Returns the grid's level.  The 2-D path defers to
    :func:`check_square_grid` so error messages stay identical.
    """
    if a.ndim == 2:
        return check_square_grid(a, name)
    if a.ndim not in SUPPORTED_NDIMS:
        raise ValueError(
            f"{name} must be {' or '.join(f'{d}-D' for d in SUPPORTED_NDIMS)}, "
            f"got ndim={a.ndim}"
        )
    if len(set(a.shape)) != 1:
        raise ValueError(f"{name} must be a cube, got shape {a.shape}")
    if not np.issubdtype(a.dtype, np.floating):
        raise TypeError(f"{name} must be a float array, got dtype {a.dtype}")
    return level_of_size(a.shape[0])
