"""Shared utilities: validation, seeding, timing, and math helpers.

These are deliberately dependency-light; every other subpackage may import
from here, but :mod:`repro.util` imports nothing from the rest of the
package.
"""

from repro.util.validation import (
    check_grid_size,
    check_square_grid,
    is_grid_size,
    level_of_size,
    size_of_level,
)
from repro.util.rng import derive_rng, spawn_seeds
from repro.util.timing import WallClock, median_time

__all__ = [
    "WallClock",
    "check_grid_size",
    "check_square_grid",
    "derive_rng",
    "is_grid_size",
    "level_of_size",
    "median_time",
    "size_of_level",
    "spawn_seeds",
]
