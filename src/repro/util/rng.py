"""Deterministic randomness plumbing.

All randomness in the library flows through :class:`numpy.random.Generator`
objects derived from an experiment seed, so tuning runs and benchmarks are
reproducible bit-for-bit given (seed, machine profile).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["derive_rng", "spawn_seeds"]


def derive_rng(seed: int | np.random.Generator | None, *key: object) -> np.random.Generator:
    """Derive an independent Generator from ``seed`` and a structural key.

    ``key`` components (strings/ints) namespace the stream so that, e.g., the
    training instances at level 5 do not share a stream with those at level 6.
    Passing an existing Generator returns it unchanged (callers that already
    hold a stream keep it).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    material = [0 if seed is None else int(seed)]
    for part in key:
        if isinstance(part, int):
            material.append(part & 0xFFFFFFFF)
        else:
            # Stable string hash (Python's hash() is salted per process).
            h = 2166136261
            for ch in str(part).encode():
                h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
            material.append(h)
    return np.random.default_rng(np.random.SeedSequence(material))


def spawn_seeds(seed: int | None, count: int) -> Sequence[int]:
    """Produce ``count`` child seeds from ``seed`` (for per-instance streams)."""
    ss = np.random.SeedSequence(0 if seed is None else seed)
    return [int(s.generate_state(1)[0]) for s in ss.spawn(count)]
