"""Injectable clocks for time-measured components.

The serving runtime measures latencies (queue wait, solve time,
end-to-end request latency, background-tune duration) and the load
generator paces retries.  Hard-wiring those to ``time.perf_counter`` /
``time.sleep`` makes the telemetry assertions in tests depend on real
scheduler behaviour — the classic source of flaky timing tests.  A
:class:`Clock` is the seam: production uses :data:`MONOTONIC_CLOCK`
(perf_counter + real sleep), tests inject a :class:`ManualClock` and
advance it deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = [
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "WallClock",
    "MONOTONIC_CLOCK",
    "WALL_CLOCK",
]


class Clock:
    """Interface: a monotonic ``now()`` in seconds plus a ``sleep()``."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError

    @property
    def now_fn(self) -> Callable[[], float]:
        """The cheapest zero-arg callable equivalent to :meth:`now`.

        Hot paths that read the clock per kernel op bind this once —
        real clocks return the underlying C builtin directly (no Python
        wrapper frame per read, which is measurable at per-op
        granularity); the base fallback is the bound ``now`` itself, so
        ``ManualClock`` stays fully injectable.
        """
        return self.now


class MonotonicClock(Clock):
    """The real thing: ``time.perf_counter`` and ``time.sleep``."""

    now_fn = staticmethod(time.perf_counter)

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


#: Shared default instance (clocks are stateless).
MONOTONIC_CLOCK = MonotonicClock()


class WallClock(Clock):
    """Wall-clock time (``time.time``) and real sleep.

    ``now_fn`` is the raw ``time.time`` builtin (see :class:`Clock`).

    ``perf_counter``'s reference point is undefined per process, so
    monotonic readings cannot be *compared* across processes or hosts.
    Anything that stores timestamps other processes must interpret —
    the fleet's lease expiries and worker heartbeats live in a shared
    database — uses wall-clock time instead.
    """

    now_fn = staticmethod(time.time)

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


#: Shared default instance for cross-process timestamps.
WALL_CLOCK = WallClock()


class ManualClock(Clock):
    """A deterministic clock tests advance by hand.

    ``sleep`` advances the clock instead of blocking, so code paths that
    pace themselves (load-generator retries, pollers) run instantly
    under test while still observing the passage of virtual time.
    Thread-safe: concurrent readers see a consistent monotone value.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} (< 0)")
        with self._lock:
            self._now += seconds
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self.advance(seconds)
