"""Wall-clock measurement helpers used by the wallclock tuning mode.

The default tuning mode prices operations with a machine cost model (see
:mod:`repro.machines`); these helpers exist for ``timing="wallclock"`` runs
and for the host-profile calibration microbenchmarks.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable

__all__ = ["WallClock", "median_time"]


class WallClock:
    """Accumulating stopwatch based on :func:`time.perf_counter`.

    >>> clock = WallClock()
    >>> with clock:
    ...     pass
    >>> clock.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "WallClock":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None


def median_time(fn: Callable[[], object], repeats: int = 3, warmup: int = 1) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs.

    A small number of warmup calls absorbs one-time costs (allocation,
    import, branch-predictor warm-up) so the median reflects steady state.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)
