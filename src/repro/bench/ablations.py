"""Ablation studies for the design choices DESIGN.md calls out.

These are not paper figures; they probe the knobs the paper fixed
(accuracy-ladder size, training distribution, smoother, factorization
caching, discrete vs Pareto DP) to show which choices the headline results
depend on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import ReferenceSolutionCache
from repro.bench.report import format_table
from repro.machines.meter import OpMeter
from repro.machines.presets import get_preset
from repro.machines.profile import MachineProfile
from repro.relax.jacobi import jacobi_sweeps
from repro.relax.sor import sor_redblack
from repro.relax.weights import omega_opt
from repro.tuner.dp import VCycleTuner
from repro.tuner.executor import PlanExecutor
from repro.tuner.pareto import ParetoTuner
from repro.tuner.plan import DEFAULT_ACCURACIES
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.util.validation import size_of_level
from repro.workloads.distributions import training_set

__all__ = [
    "ablation_accuracy_ladder",
    "ablation_factor_caching",
    "ablation_pareto_vs_discrete",
    "ablation_smoother",
    "ablation_training_distribution",
]

_TEST_SEED_OFFSET = 7919


@dataclass
class AblationResult:
    title: str
    table: str

    def format(self) -> str:
        return f"{self.title}\n{self.table}"


def _tuned_time(
    max_level: int,
    accuracies: tuple[float, ...],
    machine: MachineProfile,
    distribution: str,
    seed: int,
    target: float,
) -> float:
    training = TrainingData(distribution=distribution, instances=2, seed=seed)
    plan = VCycleTuner(
        max_level=max_level,
        accuracies=accuracies,
        training=training,
        timing=CostModelTiming(machine),
        keep_audit=False,
    ).tune()
    return plan.time_on(machine, max_level, plan.accuracy_index(target))


def ablation_accuracy_ladder(
    max_level: int = 6,
    machine: str = "intel",
    distribution: str = "unbiased",
    target: float = 1e9,
    seed: int = 0,
) -> AblationResult:
    """How much does the multi-accuracy ladder buy over a single accuracy?

    Ladders from {1e9} alone (no internal accuracy freedom) up to the
    paper's five levels.
    """
    profile = get_preset(machine)
    ladders = {
        "m=1 {1e9}": (1e9,),
        "m=2 {1e3,1e9}": (1e3, 1e9),
        "m=3 {1e1,1e5,1e9}": (1e1, 1e5, 1e9),
        "m=5 paper ladder": DEFAULT_ACCURACIES,
    }
    rows = []
    base = None
    for name, ladder in ladders.items():
        t = _tuned_time(max_level, ladder, profile, distribution, seed, target)
        base = base or t
        rows.append((name, f"{t:.3e}", f"{base / t:.2f}x"))
    return AblationResult(
        title=(
            f"Accuracy-ladder ablation (target {target:g}, N="
            f"{size_of_level(max_level)}, {profile.name})"
        ),
        table=format_table(["ladder", "tuned time (s)", "speedup vs m=1"], rows),
    )


def ablation_training_distribution(
    max_level: int = 6,
    machine: str = "intel",
    target: float = 1e5,
    seed: int = 0,
    instances: int = 2,
) -> AblationResult:
    """Train on each distribution, evaluate on each (2x2 matrix).

    The paper: "If one wishes to obtain tuned multigrid cycles for a
    different input distribution, the training should be done using that
    data distribution."
    """
    profile = get_preset(machine)
    dists = ("unbiased", "biased")
    plans = {}
    for d in dists:
        training = TrainingData(distribution=d, instances=instances, seed=seed)
        plans[d] = VCycleTuner(
            max_level=max_level,
            training=training,
            timing=CostModelTiming(profile),
            keep_audit=False,
        ).tune()
    executor = PlanExecutor()
    cache = ReferenceSolutionCache()
    rows = []
    for train_d in dists:
        plan = plans[train_d]
        idx = plan.accuracy_index(target)
        for test_d in dists:
            n = size_of_level(max_level)
            problems = training_set(test_d, n, instances, seed + _TEST_SEED_OFFSET)
            total, achieved = 0.0, []
            for problem in problems:
                x = problem.initial_guess()
                judge = AccuracyJudge(x, cache.get(problem))
                meter = OpMeter()
                executor.run_v(plan, x, problem.b, idx, meter)
                total += profile.price(meter)
                achieved.append(judge.accuracy_of(x))
            rows.append(
                (
                    train_d,
                    test_d,
                    f"{total / len(problems):.3e}",
                    f"{min(achieved):.2e}",
                )
            )
    return AblationResult(
        title=f"Training-distribution ablation (target {target:g}, {profile.name})",
        table=format_table(
            ["trained on", "tested on", "time (s)", "worst achieved accuracy"], rows
        ),
    )


def ablation_smoother(
    level: int = 6,
    target: float = 1e3,
    seed: int = 0,
) -> AblationResult:
    """Red-black SOR vs weighted Jacobi: sweeps to a fixed accuracy.

    Reproduces the paper's stated reason for fixing SOR as the smoother
    ("it performed better than weighted Jacobi ... for similar computation
    cost per iteration").
    """
    n = size_of_level(level)
    problem = training_set("unbiased", n, 1, seed)[0]
    cache = ReferenceSolutionCache()
    x_opt = cache.get(problem)
    rows = []
    for name, weight, step in (
        ("SOR(w_opt)", omega_opt(n), lambda x, b, w: sor_redblack(x, b, w, 1)),
        ("SOR(1.15)", 1.15, lambda x, b, w: sor_redblack(x, b, w, 1)),
        ("Jacobi(2/3)", 2.0 / 3.0, lambda x, b, w: jacobi_sweeps(x, b, w, 1)),
    ):
        x = problem.initial_guess()
        judge = AccuracyJudge(x, x_opt)
        sweeps = 0
        while judge.accuracy_of(x) < target and sweeps < 20000:
            step(x, problem.b, weight)
            sweeps += 1
        rows.append((name, sweeps, f"{judge.accuracy_of(x):.2e}"))
    return AblationResult(
        title=f"Smoother ablation: sweeps to accuracy {target:g} at N={n}",
        table=format_table(["smoother", "sweeps", "achieved"], rows),
    )


def ablation_factor_caching(
    max_level: int = 6,
    machine: str = "intel",
    distribution: str = "unbiased",
    target: float = 1e9,
    seed: int = 0,
) -> AblationResult:
    """DPBSV-faithful (factor every call) vs cached-factorization pricing.

    The tuned plan's direct calls are re-priced as solve-only; with cheap
    direct solves the optimal plan itself may change, so we also re-tune
    under a cached-cost profile.
    """
    profile = get_preset(machine)
    training = TrainingData(distribution=distribution, instances=2, seed=seed)
    plan = VCycleTuner(
        max_level=max_level,
        training=training,
        timing=CostModelTiming(profile),
        keep_audit=False,
    ).tune()
    idx = plan.accuracy_index(target)
    meter = plan.unit_meter(max_level, idx)
    faithful = profile.price(meter)
    cached_meter = OpMeter()
    for (op, n), count in meter.items():
        cached_meter.charge("direct_solve" if op == "direct" else op, n, count)
    cached = profile.price(cached_meter)
    rows = [
        ("factor every call (DPBSV)", f"{faithful:.3e}"),
        ("cached factorization (same plan)", f"{cached:.3e}"),
    ]
    return AblationResult(
        title=(
            f"Factorization-caching ablation (target {target:g}, N="
            f"{size_of_level(max_level)}, {profile.name})"
        ),
        table=format_table(["direct-solve pricing", "tuned time (s)"], rows),
    )


def ablation_pareto_vs_discrete(
    max_level: int = 4,
    machine: str = "intel",
    distribution: str = "unbiased",
    seed: int = 0,
) -> AblationResult:
    """Full Pareto DP (section 2.2) vs the discrete ladder (section 2.3).

    For each discrete accuracy, compare the discrete plan's tuned time with
    the fastest Pareto-front member meeting that accuracy.
    """
    profile = get_preset(machine)
    training = TrainingData(distribution=distribution, instances=2, seed=seed)
    plan = VCycleTuner(
        max_level=max_level,
        training=training,
        timing=CostModelTiming(profile),
        keep_audit=False,
    ).tune()
    pareto_sets = ParetoTuner(
        max_level=max_level,
        training=TrainingData(distribution=distribution, instances=2, seed=seed),
        timing=CostModelTiming(profile),
        max_set_size=16,
    ).tune()
    front = pareto_sets[max_level]
    rows = []
    for i, acc in enumerate(plan.accuracies):
        discrete_t = plan.time_on(profile, max_level, i)
        feasible = [p for p in front if p.accuracy >= acc]
        pareto_t = min((p.seconds for p in feasible), default=None)
        rows.append(
            (
                f"{acc:g}",
                f"{discrete_t:.3e}",
                "-" if pareto_t is None else f"{pareto_t:.3e}",
                "-" if pareto_t is None else f"{discrete_t / pareto_t:.2f}",
            )
        )
    return AblationResult(
        title=(
            f"Discrete vs Pareto DP at N={size_of_level(max_level)} "
            f"({profile.name}; front size {len(front)})"
        ),
        table=format_table(
            ["accuracy", "discrete time (s)", "pareto time (s)", "discrete/pareto"],
            rows,
        ),
    )
