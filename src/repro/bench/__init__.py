"""Experiment harness: drivers for every table and figure plus ablations.

See DESIGN.md section 4 for the experiment index mapping paper artifacts to
these drivers and to the pytest-benchmark files under ``benchmarks/``.
"""

from repro.bench.report import (
    Series,
    format_ratio_table,
    format_series_table,
    format_table,
)
from repro.bench.fitting import PowerLawFit, fit_power_law
from repro.bench.parallel import simulate_trace, trace_task_graph
from repro.bench.experiments import (
    cross_architecture,
    fig10_13_reference_comparison,
    fig14_architectures,
    fig4_call_stacks,
    fig5_cycle_shapes,
    fig6_algorithm_comparison,
    fig7_heuristics,
    fig9_parallel_scaling,
    table1_complexity,
    tune_pair,
)
from repro.bench.ablations import (
    ablation_accuracy_ladder,
    ablation_factor_caching,
    ablation_pareto_vs_discrete,
    ablation_smoother,
    ablation_training_distribution,
)

__all__ = [
    "PowerLawFit",
    "Series",
    "ablation_accuracy_ladder",
    "ablation_factor_caching",
    "ablation_pareto_vs_discrete",
    "ablation_smoother",
    "ablation_training_distribution",
    "cross_architecture",
    "fig10_13_reference_comparison",
    "fig14_architectures",
    "fig4_call_stacks",
    "fig5_cycle_shapes",
    "fig6_algorithm_comparison",
    "fig7_heuristics",
    "fig9_parallel_scaling",
    "fit_power_law",
    "format_ratio_table",
    "format_series_table",
    "format_table",
    "simulate_trace",
    "table1_complexity",
    "trace_task_graph",
    "tune_pair",
]
