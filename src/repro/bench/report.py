"""Text tables and series for experiment output.

The paper's figures are line plots; the harness reproduces them as aligned
text tables (one row per x value, one column per series) so runs are
diffable and greppable.  EXPERIMENTS.md embeds these tables directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Series", "format_ratio_table", "format_series_table", "format_table"]


@dataclass
class Series:
    """One plotted line: a name and y-values aligned with shared x-values."""

    name: str
    values: list[float | None] = field(default_factory=list)

    def add(self, value: float | None) -> None:
        self.values.append(value)


def _fmt(value: float | None, width: int, precision: int) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:.{precision}e}".rjust(width)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain aligned table with a header rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    xs: Sequence[object],
    series: Sequence[Series],
    precision: int = 3,
) -> str:
    """Table with one row per x and one numeric column per series."""
    for s in series:
        if len(s.values) != len(xs):
            raise ValueError(
                f"series {s.name!r} has {len(s.values)} values for {len(xs)} x's"
            )
    headers = [x_label] + [s.name for s in series]
    width = precision + 7
    rows = []
    for i, x in enumerate(xs):
        rows.append([str(x)] + [_fmt(s.values[i], width, precision) for s in series])
    return format_table(headers, rows)


def format_ratio_table(
    x_label: str,
    xs: Sequence[object],
    baseline: Series,
    series: Sequence[Series],
    precision: int = 3,
) -> str:
    """Each series divided by the baseline (the paper's 'relative time')."""
    ratio_series = []
    for s in series:
        ratios = []
        for val, base in zip(s.values, baseline.values):
            if val is None or base is None or base == 0:
                ratios.append(None)
            else:
                ratios.append(val / base)
        ratio_series.append(Series(name=s.name, values=ratios))
    return format_series_table(x_label, xs, ratio_series, precision)
