"""Task-graph construction for parallel-scaling experiments (Figure 9).

Converts a tuned plan's execution trace into a task graph: every stencil op
becomes a row-block fan-out with a barrier to the next op; direct solves
are single serial tasks.  The virtual-time work-stealing simulator then
yields makespans at different worker counts — the same Amdahl structure a
real parallel run of the algorithm exhibits (serial coarse-grid work limits
speedup; fine-grid sweeps parallelize well).
"""

from __future__ import annotations

from repro.machines.profile import MachineProfile
from repro.runtime.simsched import SimReport, SimulatedScheduler
from repro.runtime.task import TaskGraph
from repro.tuner.trace import Trace
from repro.util.validation import size_of_level

__all__ = ["simulate_trace", "trace_task_graph"]

#: ops whose work splits across row blocks
_PARALLEL_OPS = {"relax", "sor", "residual", "restrict", "interpolate"}


def _op_cost(profile: MachineProfile, op: str, n: int) -> float:
    name = "relax" if op in ("relax", "sor") else op
    t = profile.stencil_time(name, n, threads=1) - profile.op_overhead
    return max(t, 0.0)


def trace_task_graph(
    trace: Trace,
    profile: MachineProfile,
    blocks: int,
) -> TaskGraph:
    """Task graph of a traced plan execution with per-task simulated costs."""
    if blocks < 1:
        raise ValueError("blocks must be >= 1")
    graph = TaskGraph()
    prev_stage: list[str] = []
    counter = 0
    for ev in trace:
        if ev.kind in ("enter", "exit", "estimate"):
            continue
        n = size_of_level(ev.level)
        counter += 1
        if ev.kind == "direct":
            name = f"direct-{counter}"
            graph.add(name, deps=prev_stage, cost=profile.direct_time(n, cached=False))
            prev_stage = [name]
            continue
        if ev.kind == "descend":
            op, sweeps = "restrict", 1
        elif ev.kind == "ascend":
            op, sweeps = "interpolate", 1
        elif ev.kind == "sor":
            op, sweeps = "sor", max(ev.detail, 1)
        else:  # relax
            op, sweeps = "relax", 1
        serial = _op_cost(profile, op, n) * sweeps
        # Do not split tiny grids below a useful chunk size.
        points = n * n
        width = max(1, min(blocks, points // 512 or 1))
        cost = serial / width
        stage = []
        for blk in range(width):
            name = f"{op}-{counter}-b{blk}"
            graph.add(name, deps=prev_stage, cost=cost)
            stage.append(name)
        prev_stage = stage
    return graph


def simulate_trace(
    trace: Trace,
    profile: MachineProfile,
    workers: int,
    blocks: int | None = None,
) -> SimReport:
    """Simulated makespan of a traced execution on ``workers`` workers.

    ``blocks`` defaults to ``workers`` (one block per worker, the natural
    data-parallel decomposition).  Scheduling overheads come from the
    profile's sync cost.
    """
    blocks = workers if blocks is None else blocks
    graph = trace_task_graph(trace, profile, blocks)
    sched = SimulatedScheduler(
        workers=workers,
        steal_overhead=profile.sync_overhead * 0.1,
        dispatch_overhead=profile.op_overhead * 0.1,
    )
    return sched.run(graph)
