"""Experiment drivers: one function per table/figure of the paper.

Every driver returns a result object carrying raw data plus ``format()``
producing the text table/diagram that EXPERIMENTS.md embeds.  All drivers
are deterministic given (seed, machine preset): candidate timing uses the
cost models, numerics use seeded generators.

Scaling note: paper sizes reach N = 4097 on 8-core servers; defaults here
cap at N = 129-257 so the full suite runs in minutes on one core.  Every
driver takes ``max_level`` to scale up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import ReferenceSolutionCache
from repro.bench.fitting import PowerLawFit, fit_power_law
from repro.bench.parallel import simulate_trace
from repro.bench.report import Series, format_ratio_table, format_series_table, format_table
from repro.cycles.render import render_call_stack, render_cycle
from repro.cycles.shape import extract_shape
from repro.cycles.stats import cycle_stats
from repro.machines.meter import OpMeter
from repro.machines.presets import get_preset
from repro.machines.profile import MachineProfile
from repro.multigrid.solver import ReferenceFullMGSolver, ReferenceVSolver, SORSolver
from repro.tuner.dp import VCycleTuner
from repro.tuner.executor import PlanExecutor
from repro.tuner.full_mg import FullMGTuner
from repro.tuner.heuristics import HeuristicStrategy, tune_heuristic
from repro.tuner.plan import DEFAULT_ACCURACIES, TunedFullMGPlan, TunedVPlan
from repro.tuner.timing import CostModelTiming
from repro.tuner.trace import Trace
from repro.tuner.training import TrainingData
from repro.util.validation import size_of_level
from repro.workloads.distributions import training_set

__all__ = [
    "CrossArchResult",
    "CycleShapeResult",
    "Fig6Result",
    "Fig7Result",
    "Fig9Result",
    "ReferenceComparisonResult",
    "Table1Result",
    "cross_architecture",
    "fig10_13_reference_comparison",
    "fig14_architectures",
    "fig4_call_stacks",
    "fig5_cycle_shapes",
    "fig6_algorithm_comparison",
    "fig7_heuristics",
    "fig9_parallel_scaling",
    "table1_complexity",
    "tune_pair",
]

_TEST_SEED_OFFSET = 7919  # keep test instances disjoint from training data


def _tuned_v(
    max_level: int,
    machine: MachineProfile,
    distribution: str,
    seed: int,
    instances: int = 3,
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES,
    reference_cache: ReferenceSolutionCache | None = None,
) -> TunedVPlan:
    training = TrainingData(
        distribution=distribution,
        instances=instances,
        seed=seed,
        reference_cache=reference_cache,
    )
    return VCycleTuner(
        max_level=max_level,
        accuracies=accuracies,
        training=training,
        timing=CostModelTiming(machine),
        keep_audit=False,
    ).tune()


def tune_pair(
    max_level: int,
    machine: MachineProfile,
    distribution: str,
    seed: int,
    instances: int = 3,
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES,
) -> tuple[TunedVPlan, TunedFullMGPlan]:
    """Tune (V, full-MG) plans for one machine/distribution."""
    cache = ReferenceSolutionCache()
    training = TrainingData(
        distribution=distribution, instances=instances, seed=seed, reference_cache=cache
    )
    vplan = VCycleTuner(
        max_level=max_level,
        accuracies=accuracies,
        training=training,
        timing=CostModelTiming(machine),
        keep_audit=False,
    ).tune()
    fplan = FullMGTuner(
        vplan=vplan,
        training=training,
        timing=CostModelTiming(machine),
        keep_audit=False,
    ).tune()
    return vplan, fplan


# ---------------------------------------------------------------------------
# Table 1 (section 2): complexity of the three building blocks
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    levels: list[int]
    cells: list[int]
    times: dict[str, list[float]]
    fits: dict[str, PowerLawFit]
    target_accuracy: float

    def format(self) -> str:
        series = [Series(name, [float(t) for t in ts]) for name, ts in self.times.items()]
        head = format_series_table("N", [size_of_level(k) for k in self.levels], series)
        rows = [
            (name, f"{fit.exponent:.2f}", f"{fit.r_squared:.4f}", paper)
            for (name, fit), paper in zip(
                self.fits.items(), ["2.0 (n^2)", "1.5 (n^1.5)", "1.0 (n)"]
            )
        ]
        tail = format_table(
            ["algorithm", "fitted exponent (in n = N^2)", "R^2", "paper"], rows
        )
        return (
            f"Time to accuracy {self.target_accuracy:g} (simulated seconds)\n"
            + head
            + "\n\n"
            + tail
        )


def table1_complexity(
    max_level: int = 7,
    machine: str | MachineProfile = "intel",
    distribution: str = "unbiased",
    target_accuracy: float = 1e5,
    seed: int = 0,
    min_fit_level: int = 4,
) -> Table1Result:
    """Empirical scaling of direct, SOR, and multigrid (section 2 table).

    Per-op costs are priced with zero overhead so the fit sees the
    asymptotic arithmetic, like the paper's complexity statement.
    """
    profile = get_preset(machine) if isinstance(machine, str) else machine
    # Strip fixed overheads: asymptotic exponents only.
    from dataclasses import replace

    asym = replace(
        profile, op_overhead=0.0, sync_overhead=0.0, direct_overhead=0.0, cores=1
    )
    levels = list(range(2, max_level + 1))
    times: dict[str, list[float]] = {"Direct": [], "SOR": [], "Multigrid": []}
    cache = ReferenceSolutionCache()
    for level in levels:
        n = size_of_level(level)
        problem = training_set(distribution, n, 1, seed + _TEST_SEED_OFFSET)[0]
        x_opt = cache.get(problem)
        times["Direct"].append(asym.direct_time(n))
        for name, solver in (("SOR", SORSolver()), ("Multigrid", ReferenceVSolver())):
            x = problem.initial_guess()
            judge = AccuracyJudge(x, x_opt)
            meter = OpMeter()
            solver.solve(x, problem.b, judge.accuracy_of, target_accuracy, meter)
            times[name].append(asym.price(meter))
    fits = {}
    fit_idx = [i for i, k in enumerate(levels) if k >= min_fit_level]
    if len(fit_idx) < 2:
        # Too few asymptotic points (tiny max_level): fit everything.
        fit_idx = list(range(len(levels)))
    for name, ts in times.items():
        ns = [float(size_of_level(levels[i]) ** 2) for i in fit_idx]
        fits[name] = fit_power_law(ns, [ts[i] for i in fit_idx])
    return Table1Result(
        levels=levels,
        cells=[size_of_level(k) ** 2 for k in levels],
        times=times,
        fits=fits,
        target_accuracy=target_accuracy,
    )


# ---------------------------------------------------------------------------
# Figure 4: call stacks of tuned MULTIGRID-V4
# ---------------------------------------------------------------------------


@dataclass
class CallStackResult:
    renders: dict[str, str]

    def format(self) -> str:
        parts = []
        for name, text in self.renders.items():
            parts.append(f"--- {name} ---\n{text}")
        return "\n\n".join(parts)


def fig4_call_stacks(
    max_level: int = 7,
    machine: str | MachineProfile = "intel",
    seed: int = 0,
    accuracy_index: int = 3,
) -> CallStackResult:
    """Call stacks of MULTIGRID-V4 for unbiased and biased training
    (paper: N=4097 on the Intel machine; scaled down by default)."""
    profile = get_preset(machine) if isinstance(machine, str) else machine
    renders = {}
    for dist in ("unbiased", "biased"):
        plan = _tuned_v(max_level, profile, dist, seed)
        renders[f"{dist} (machine={profile.name}, N={size_of_level(max_level)})"] = (
            render_call_stack(plan, max_level, accuracy_index)
        )
    return CallStackResult(renders=renders)


# ---------------------------------------------------------------------------
# Figures 5 and 14: tuned cycle shapes
# ---------------------------------------------------------------------------


@dataclass
class CycleShapeResult:
    renders: dict[str, str]
    stats: dict[str, object]

    def format(self) -> str:
        parts = []
        for name, text in self.renders.items():
            parts.append(f"--- {name} ---\n{text}")
        return "\n\n".join(parts)


def _traced_cycle(
    plan: TunedVPlan | TunedFullMGPlan,
    level: int,
    acc_index: int,
    distribution: str,
    seed: int,
) -> tuple[str, object]:
    n = size_of_level(level)
    problem = training_set(distribution, n, 1, seed + _TEST_SEED_OFFSET)[0]
    x = problem.initial_guess()
    trace = Trace()
    executor = PlanExecutor()
    if isinstance(plan, TunedFullMGPlan):
        executor.run_full_mg(plan, x, problem.b, acc_index, trace=trace)
    else:
        executor.run_v(plan, x, problem.b, acc_index, trace=trace)
    shape = extract_shape(trace)
    return render_cycle(shape), cycle_stats(shape)


def fig5_cycle_shapes(
    max_level: int = 6,
    machine: str | MachineProfile = "amd",
    seed: int = 0,
    targets: Sequence[float] = (1e1, 1e3, 1e5, 1e7),
) -> CycleShapeResult:
    """Tuned V and full-MG cycles on the AMD profile for both input
    distributions (paper Figure 5, N=2049; scaled by default)."""
    profile = get_preset(machine) if isinstance(machine, str) else machine
    renders: dict[str, str] = {}
    stats: dict[str, object] = {}
    for dist in ("unbiased", "biased"):
        vplan, fplan = tune_pair(max_level, profile, dist, seed)
        for kind, plan in (("V", vplan), ("full-MG", fplan)):
            for t in targets:
                idx = plan.accuracy_index(t)
                key = f"{kind} cycle, {dist}, accuracy {t:g} ({profile.name})"
                renders[key], stats[key] = _traced_cycle(plan, max_level, idx, dist, seed)
    return CycleShapeResult(renders=renders, stats=stats)


def fig14_architectures(
    max_level: int = 6,
    target: float = 1e5,
    distribution: str = "unbiased",
    seed: int = 0,
    machines: Sequence[str] = ("intel", "amd", "sun"),
) -> CycleShapeResult:
    """Tuned full-MG cycles across the three testbed profiles (Figure 14)."""
    renders: dict[str, str] = {}
    stats: dict[str, object] = {}
    for name in machines:
        profile = get_preset(name)
        _, fplan = tune_pair(max_level, profile, distribution, seed)
        idx = fplan.accuracy_index(target)
        key = f"full-MG cycle, {profile.name}, accuracy {target:g}"
        renders[key], stats[key] = _traced_cycle(fplan, max_level, idx, distribution, seed)
    return CycleShapeResult(renders=renders, stats=stats)


# ---------------------------------------------------------------------------
# Figure 6: autotuned vs basic algorithms, accuracy 1e9
# ---------------------------------------------------------------------------


@dataclass
class Fig6Result:
    levels: list[int]
    sizes: list[int]
    series: list[Series]
    achieved: dict[str, list[float]]

    def format(self) -> str:
        return format_series_table("N", self.sizes, self.series)


def fig6_algorithm_comparison(
    max_level: int = 7,
    machine: str | MachineProfile = "intel",
    distribution: str = "unbiased",
    target: float = 1e9,
    seed: int = 0,
    instances: int = 2,
) -> Fig6Result:
    """Direct / SOR / simple multigrid / autotuned, time to accuracy 1e9."""
    profile = get_preset(machine) if isinstance(machine, str) else machine
    plan = _tuned_v(max_level, profile, distribution, seed)
    top = plan.accuracy_index(target)
    cache = ReferenceSolutionCache()
    executor = PlanExecutor()
    levels = list(range(2, max_level + 1))
    names = ("Direct", "SOR", "Multigrid", "Autotuned")
    series = {name: Series(name) for name in names}
    achieved: dict[str, list[float]] = {name: [] for name in names}
    for level in levels:
        n = size_of_level(level)
        problems = training_set(distribution, n, instances, seed + _TEST_SEED_OFFSET)
        sums = {name: 0.0 for name in names}
        accs = {name: [] for name in names}
        for problem in problems:
            x_opt = cache.get(problem)
            # Direct: priced exactly, achieves machine precision.
            sums["Direct"] += profile.direct_time(n)
            x0 = problem.initial_guess()
            judge = AccuracyJudge(x0, x_opt)
            accs["Direct"].append(float("inf"))
            for name, solver in (
                ("SOR", SORSolver()),
                ("Multigrid", ReferenceVSolver()),
            ):
                x = problem.initial_guess()
                meter = OpMeter()
                solver.solve(x, problem.b, judge.accuracy_of, target, meter)
                sums[name] += profile.price(meter)
                accs[name].append(judge.accuracy_of(x))
            x = problem.initial_guess()
            meter = OpMeter()
            executor.run_v(plan, x, problem.b, top, meter)
            sums["Autotuned"] += profile.price(meter)
            accs["Autotuned"].append(judge.accuracy_of(x))
        for name in names:
            series[name].add(sums[name] / len(problems))
            achieved[name].append(float(np.median(accs[name])))
    return Fig6Result(
        levels=levels,
        sizes=[size_of_level(k) for k in levels],
        series=[series[n] for n in names],
        achieved=achieved,
    )


# ---------------------------------------------------------------------------
# Figures 7/8: heuristic strategies vs the autotuner
# ---------------------------------------------------------------------------


@dataclass
class Fig7Result:
    levels: list[int]
    sizes: list[int]
    series: list[Series]  # absolute times; Autotuned last
    accuracies: tuple[float, ...]

    def format(self) -> str:
        return format_series_table("N", self.sizes, self.series)

    def format_ratios(self) -> str:
        """Figure 8: every strategy relative to the autotuned time."""
        baseline = self.series[-1]
        return format_ratio_table("N", self.sizes, baseline, self.series)


def fig7_heuristics(
    max_level: int = 7,
    machine: str | MachineProfile = "intel",
    distribution: str = "biased",
    seed: int = 0,
    min_level: int = 4,
) -> Fig7Result:
    """Strategy 10^9 and 10^x/10^9 heuristics vs the autotuned algorithm.

    Times are per-plan unit prices at each level's top-accuracy slot —
    the cost of one tuned solve to accuracy 10^9, exactly what Figure 7
    plots against input size.
    """
    profile = get_preset(machine) if isinstance(machine, str) else machine
    accuracies = DEFAULT_ACCURACIES
    final_index = len(accuracies) - 1
    cache = ReferenceSolutionCache()
    training = TrainingData(
        distribution=distribution, instances=3, seed=seed, reference_cache=cache
    )
    timing = CostModelTiming(profile)
    levels = list(range(min_level, max_level + 1))
    series: list[Series] = []
    for sub in range(final_index, -1, -1):
        strategy = HeuristicStrategy(sub_index=sub, final_index=final_index)
        plan = tune_heuristic(
            strategy, max_level, accuracies, training, timing,
        )
        s = Series(plan.metadata["heuristic"])
        for level in levels:
            s.add(plan.time_on(profile, level, final_index))
        series.append(s)
    auto = VCycleTuner(
        max_level=max_level,
        accuracies=accuracies,
        training=training,
        timing=timing,
        keep_audit=False,
    ).tune()
    s = Series("Autotuned")
    for level in levels:
        s.add(auto.time_on(profile, level, final_index))
    series.append(s)
    return Fig7Result(
        levels=levels,
        sizes=[size_of_level(k) for k in levels],
        series=series,
        accuracies=accuracies,
    )


# ---------------------------------------------------------------------------
# Figure 9: parallel scalability
# ---------------------------------------------------------------------------


@dataclass
class Fig9Result:
    threads: list[int]
    speedups: list[float]
    makespans: list[float]

    def format(self) -> str:
        rows = [
            (t, f"{m:.3e}", f"{s:.2f}")
            for t, m, s in zip(self.threads, self.makespans, self.speedups)
        ]
        return format_table(["threads", "simulated time (s)", "speedup"], rows)


def fig9_parallel_scaling(
    max_level: int = 7,
    machine: str | MachineProfile = "intel",
    distribution: str = "unbiased",
    target: float = 1e9,
    seed: int = 0,
    max_threads: int = 8,
) -> Fig9Result:
    """Speedup of the tuned algorithm as worker threads are added,
    via the virtual-time work-stealing scheduler."""
    profile = get_preset(machine) if isinstance(machine, str) else machine
    plan = _tuned_v(max_level, profile, distribution, seed)
    idx = plan.accuracy_index(target)
    n = size_of_level(max_level)
    problem = training_set(distribution, n, 1, seed + _TEST_SEED_OFFSET)[0]
    trace = Trace()
    x = problem.initial_guess()
    PlanExecutor().run_v(plan, x, problem.b, idx, trace=trace)
    threads = list(range(1, max_threads + 1))
    makespans = []
    for t in threads:
        makespans.append(simulate_trace(trace, profile, workers=t).makespan)
    speedups = [makespans[0] / m for m in makespans]
    return Fig9Result(threads=threads, speedups=speedups, makespans=makespans)


# ---------------------------------------------------------------------------
# Figures 10-13: autotuned vs reference algorithms across machines
# ---------------------------------------------------------------------------


@dataclass
class ReferenceComparisonResult:
    machine: str
    distribution: str
    target: float
    levels: list[int]
    sizes: list[int]
    series: list[Series]  # ReferenceV, ReferenceFullMG, AutotunedV, AutotunedFullMG
    speedup_at_top: dict[str, float]

    def format(self) -> str:
        baseline = self.series[0]
        table = format_ratio_table("N", self.sizes, baseline, self.series)
        extra = ", ".join(f"{k}: {v:.2f}x" for k, v in self.speedup_at_top.items())
        return (
            f"machine={self.machine} distribution={self.distribution} "
            f"target={self.target:g}\nrelative time vs reference V (lower is "
            f"better)\n{table}\nspeedup vs reference full MG at N="
            f"{self.sizes[-1]}: {extra}"
        )


def fig10_13_reference_comparison(
    max_level: int = 7,
    machine: str | MachineProfile = "intel",
    distribution: str = "unbiased",
    target: float = 1e5,
    seed: int = 0,
    instances: int = 2,
    plans: tuple[TunedVPlan, TunedFullMGPlan] | None = None,
) -> ReferenceComparisonResult:
    """One panel of Figures 10-13: reference V / reference full MG /
    autotuned V / autotuned full MG, relative to reference V."""
    profile = get_preset(machine) if isinstance(machine, str) else machine
    vplan, fplan = plans if plans is not None else tune_pair(
        max_level, profile, distribution, seed
    )
    v_idx = vplan.accuracy_index(target)
    f_idx = fplan.accuracy_index(target)
    cache = ReferenceSolutionCache()
    executor = PlanExecutor()
    levels = list(range(2, max_level + 1))
    names = ("Reference V", "Reference Full MG", "Autotuned V", "Autotuned Full MG")
    series = {name: Series(name) for name in names}
    for level in levels:
        n = size_of_level(level)
        problems = training_set(distribution, n, instances, seed + _TEST_SEED_OFFSET)
        sums = {name: 0.0 for name in names}
        for problem in problems:
            x_opt = cache.get(problem)
            x0 = problem.initial_guess()
            judge = AccuracyJudge(x0, x_opt)
            for name, solver in (
                ("Reference V", ReferenceVSolver()),
                ("Reference Full MG", ReferenceFullMGSolver()),
            ):
                x = problem.initial_guess()
                meter = OpMeter()
                solver.solve(x, problem.b, judge.accuracy_of, target, meter)
                sums[name] += profile.price(meter)
            x = problem.initial_guess()
            meter = OpMeter()
            executor.run_v(vplan, x, problem.b, v_idx, meter)
            sums["Autotuned V"] += profile.price(meter)
            x = problem.initial_guess()
            meter = OpMeter()
            executor.run_full_mg(fplan, x, problem.b, f_idx, meter)
            sums["Autotuned Full MG"] += profile.price(meter)
        for name in names:
            series[name].add(sums[name] / len(problems))
    ref_fmg_top = series["Reference Full MG"].values[-1]
    speedups = {
        "Autotuned V": ref_fmg_top / series["Autotuned V"].values[-1],
        "Autotuned Full MG": ref_fmg_top / series["Autotuned Full MG"].values[-1],
    }
    return ReferenceComparisonResult(
        machine=profile.name,
        distribution=distribution,
        target=target,
        levels=levels,
        sizes=[size_of_level(k) for k in levels],
        series=[series[n] for n in names],
        speedup_at_top=speedups,
    )


# ---------------------------------------------------------------------------
# Section 4.3: cross-architecture tuning penalty
# ---------------------------------------------------------------------------


@dataclass
class CrossArchResult:
    target: float
    entries: list[tuple[str, str, float]]  # (trained_on, run_on, slowdown %)

    def format(self) -> str:
        rows = [
            (trained, run, f"{pct:+.1f}%")
            for trained, run, pct in self.entries
        ]
        return format_table(
            ["trained on", "run on", "slowdown vs native tuning"], rows
        )


def cross_architecture(
    max_level: int = 6,
    machines: Sequence[str] = ("intel", "sun"),
    distribution: str = "unbiased",
    target: float = 1e5,
    seed: int = 0,
) -> CrossArchResult:
    """Run each machine's tuned full-MG plan on the other machine
    (paper: Niagara-trained on Xeon = +29%, Xeon-trained on Niagara = +79%)."""
    profiles = [get_preset(m) if isinstance(m, str) else m for m in machines]
    plans = {
        p.name: tune_pair(max_level, p, distribution, seed)[1] for p in profiles
    }
    entries = []
    for runner in profiles:
        native = plans[runner.name]
        native_time = native.time_on(runner, max_level, native.accuracy_index(target))
        for trainer in profiles:
            if trainer.name == runner.name:
                continue
            foreign = plans[trainer.name]
            t = foreign.time_on(runner, max_level, foreign.accuracy_index(target))
            entries.append(
                (trainer.name, runner.name, 100.0 * (t / native_time - 1.0))
            )
    return CrossArchResult(target=target, entries=entries)
