"""Scaling-exponent fits for the complexity table (section 2).

The paper's table states serial complexities in n = N^2 grid cells:
direct n^2, SOR n^1.5, multigrid n.  We recover empirical exponents by
least-squares in log-log space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law"]


@dataclass(frozen=True)
class PowerLawFit:
    """time ~ coefficient * n**exponent."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, n: float) -> float:
        return self.coefficient * n**self.exponent


def fit_power_law(ns: Sequence[float], times: Sequence[float]) -> PowerLawFit:
    """Fit time = c * n^e over the provided points (requires >= 2)."""
    if len(ns) != len(times):
        raise ValueError("ns and times must align")
    if len(ns) < 2:
        raise ValueError("need at least two points to fit")
    if any(v <= 0 for v in ns) or any(v <= 0 for v in times):
        raise ValueError("power-law fit needs positive data")
    lx = np.log(np.asarray(ns, dtype=float))
    ly = np.log(np.asarray(times, dtype=float))
    a = np.vstack([np.ones_like(lx), lx]).T
    (intercept, slope), res, *_ = np.linalg.lstsq(a, ly, rcond=None)
    total = float(((ly - ly.mean()) ** 2).sum())
    if total == 0.0:
        r2 = 1.0
    else:
        residual = float(res[0]) if len(res) else float(((a @ [intercept, slope] - ly) ** 2).sum())
        r2 = 1.0 - residual / total
    return PowerLawFit(exponent=float(slope), coefficient=float(np.exp(intercept)), r_squared=r2)
