"""Flat configuration space and configuration files.

"All choices are represented in a flat configuration space.  Dependencies
between these configurable parameters are exported to the autotuner so
that the autotuner can choose a sensible order to tune different
parameters." (section 3.2.2)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

import networkx as nx

__all__ = ["ConfigSpace", "Configuration"]


class Configuration:
    """A concrete assignment of configuration values (JSON-serializable)."""

    def __init__(self, values: Mapping[str, Any] | None = None) -> None:
        self._values: dict[str, Any] = dict(values or {})

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def set(self, key: str, value: Any) -> "Configuration":
        self._values[key] = value
        return self

    def updated(self, **kwargs: Any) -> "Configuration":
        """Copy with some keys replaced."""
        merged = dict(self._values)
        merged.update(kwargs)
        return Configuration(merged)

    def as_dict(self) -> dict[str, Any]:
        return dict(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Configuration({self._values})"

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self._values, indent=2, sort_keys=True, default=list))

    @classmethod
    def load(cls, path: str | Path) -> "Configuration":
        raw = json.loads(Path(path).read_text())
        # JSON turns level tuples into lists; normalize to tuples.
        for key, value in raw.items():
            if key.endswith(".levels") and isinstance(value, list):
                raw[key] = [tuple(item) for item in value]
        return cls(raw)


class ConfigSpace:
    """The set of tunable parameters and their tuning-order dependencies."""

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    def add_param(
        self, name: str, depends_on: Iterable[str] = (), **attrs: Any
    ) -> None:
        if name in self._graph:
            raise ValueError(f"duplicate parameter {name!r}")
        self._graph.add_node(name, **attrs)
        for dep in depends_on:
            if dep not in self._graph:
                raise ValueError(f"parameter {name!r} depends on unknown {dep!r}")
            self._graph.add_edge(dep, name)

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return len(self._graph)

    def params(self) -> list[str]:
        return list(self._graph.nodes)

    def tuning_order(self) -> list[list[str]]:
        """Groups of parameters in the order the autotuner should visit.

        Parameters in the same group belong to a dependency cycle and are
        "tuned in parallel, with progressively larger input sizes"
        (section 3.2.2); acyclic parts come back as singleton groups,
        leaves first.
        """
        condensed = nx.condensation(self._graph)
        order = []
        for scc_id in nx.topological_sort(condensed):
            members = sorted(condensed.nodes[scc_id]["members"])
            order.append(members)
        return order
