"""Mini-PetaBricks: the language/compiler substrate (paper section 3).

PetaBricks is an implicitly parallel language where algorithmic choice is a
first-class construct: *transforms* (functions) contain *rules*
(alternative ways to compute regions of the output), the compiler builds
choice grids and a choice dependency graph, and an autotuner picks rules
and parameters, persisting them in a configuration file.

This package reproduces that machinery in Python:

* :mod:`~repro.petabricks.language` — transforms, rules, tunables, and the
  selector-based execution model ("multi-level algorithms": a rule per
  input-size range).
* :mod:`~repro.petabricks.regions` / :mod:`~repro.petabricks.choicegrid` —
  applicable-region inference and rectilinear choice grids for 2-D data.
* :mod:`~repro.petabricks.choicedep` — the choice dependency graph
  (networkx), with schedule extraction.
* :mod:`~repro.petabricks.autotuner` — the bottom-up genetic autotuner of
  section 3.2.2: population seeded with single-algorithm configs, input
  sizes doubling, new candidates by adding levels to the fastest members.
* :mod:`~repro.petabricks.nary` — n-ary search for scalar tunables.
* :mod:`~repro.petabricks.configfile` — flat configuration space with
  dependency ordering and JSON persistence.

The multigrid work uses the same concepts with a specialized DP tuner
(:mod:`repro.tuner`); this package demonstrates the general framework on
other transforms (see ``examples/petabricks_sort.py``).
"""

from repro.petabricks.language import (
    Rule,
    Transform,
    TunableParam,
)
from repro.petabricks.configfile import Configuration, ConfigSpace
from repro.petabricks.regions import Region, region_intersection
from repro.petabricks.choicegrid import ChoiceGrid, build_choice_grid
from repro.petabricks.choicedep import ChoiceDependencyGraph
from repro.petabricks.autotuner import BottomUpTuner, Candidate, MultiLevelConfig
from repro.petabricks.nary import nary_search

__all__ = [
    "BottomUpTuner",
    "Candidate",
    "ChoiceDependencyGraph",
    "ChoiceGrid",
    "Configuration",
    "ConfigSpace",
    "MultiLevelConfig",
    "Region",
    "Rule",
    "Transform",
    "TunableParam",
    "build_choice_grid",
    "nary_search",
    "region_intersection",
]
