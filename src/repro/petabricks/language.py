"""Transforms and rules: algorithmic choice as a first-class construct.

A :class:`Transform` declares what is computed; each :class:`Rule` is one
way to compute it.  Rules may recurse into the transform (divide and
conquer), and the active :class:`~repro.petabricks.configfile.Configuration`
decides which rule runs at which input size — producing exactly the
"multi-level algorithms" the PetaBricks autotuner builds (e.g. merge sort
above a cutoff, insertion sort below it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.petabricks.configfile import Configuration

__all__ = ["Rule", "Transform", "TunableParam"]


@dataclass(frozen=True)
class TunableParam:
    """A scalar knob exported to the autotuner (cutoffs, block sizes...)."""

    name: str
    default: int
    minimum: int
    maximum: int
    #: names of params that should be tuned before this one (the paper's
    #: "dependencies between configurable parameters")
    depends_on: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.minimum <= self.default <= self.maximum:
            raise ValueError(
                f"default {self.default} outside [{self.minimum}, {self.maximum}]"
            )

    def clamp(self, value: int) -> int:
        return max(self.minimum, min(self.maximum, int(value)))


@dataclass(frozen=True)
class Rule:
    """One way to make progress on a transform.

    ``body(transform, input, config)`` computes and returns the output.
    Recursive rules call ``transform.run(sub_input, config)``.
    ``applicable`` can restrict the rule (e.g. a leaf rule only below some
    size); ``granularity`` documents the work-division the rule implies.
    """

    name: str
    body: Callable[["Transform", Any, Configuration], Any]
    applicable: Callable[[Any], bool] = lambda _inp: True
    granularity: int = 1

    def can_apply(self, inp: Any) -> bool:
        return self.applicable(inp)


class Transform:
    """A named computation with alternative rules and tunable parameters."""

    def __init__(
        self,
        name: str,
        rules: Sequence[Rule],
        tunables: Sequence[TunableParam] = (),
        size_of: Callable[[Any], int] = len,
    ) -> None:
        if not rules:
            raise ValueError("a transform needs at least one rule")
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {name}: {names}")
        self.name = name
        self.rules = list(rules)
        self.tunables = list(tunables)
        self.size_of = size_of
        self._rule_index = {r.name: r for r in rules}

    def rule(self, name: str) -> Rule:
        return self._rule_index[name]

    def rule_names(self) -> list[str]:
        return [r.name for r in self.rules]

    # -- execution ---------------------------------------------------------

    def select_rule(self, inp: Any, config: Configuration) -> Rule:
        """Rule chosen by the configuration for this input size.

        The configuration stores a *multi-level* selector: a sorted list of
        (max_size, rule_name) levels under key ``"<transform>.levels"``;
        the first level whose max_size covers the input wins.  Falls back
        to the first applicable rule when unconfigured.
        """
        size = self.size_of(inp)
        levels = config.get(f"{self.name}.levels", None)
        if levels:
            for max_size, rule_name in levels:
                if size <= max_size:
                    rule = self._rule_index[rule_name]
                    if rule.can_apply(inp):
                        return rule
            rule = self._rule_index[levels[-1][1]]
            if rule.can_apply(inp):
                return rule
        for rule in self.rules:
            if rule.can_apply(inp):
                return rule
        raise RuntimeError(f"no applicable rule in transform {self.name} for {inp!r}")

    def run(self, inp: Any, config: Configuration | None = None) -> Any:
        """Execute the transform under a configuration."""
        config = config if config is not None else Configuration()
        rule = self.select_rule(inp, config)
        return rule.body(self, inp, config)
