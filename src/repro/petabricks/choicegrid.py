"""Choice grids: rectilinear partition of a matrix by available rule sets.

"Next, the applicable regions are aggregated together into choice grids.
The choice grid divides each matrix into rectilinear regions where uniform
sets of rules may legally be applied." (section 3.2.1)

Implementation: collect the distinct row and column boundaries of all
applicable regions, form the induced rectilinear cells, and label each
cell with the set of rules whose region covers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.petabricks.regions import Region

__all__ = ["ChoiceGrid", "ChoiceGridCell", "build_choice_grid"]


@dataclass(frozen=True)
class ChoiceGridCell:
    region: Region
    rules: frozenset[str]


@dataclass(frozen=True)
class ChoiceGrid:
    """All cells covering the output region."""

    output: Region
    cells: tuple[ChoiceGridCell, ...]

    def cell_at(self, row: int, col: int) -> ChoiceGridCell:
        for cell in self.cells:
            if cell.region.contains(row, col):
                return cell
        raise KeyError(f"({row}, {col}) outside the output region")

    def uncovered_cells(self) -> list[ChoiceGridCell]:
        """Cells no rule can compute — compile errors in PetaBricks."""
        return [c for c in self.cells if not c.rules]


def build_choice_grid(
    output: Region, applicable: Mapping[str, Region | Sequence[Region]]
) -> ChoiceGrid:
    """Build the choice grid for ``output`` given per-rule applicable regions."""
    row_cuts = {output.row_lo, output.row_hi}
    col_cuts = {output.col_lo, output.col_hi}
    normalized: dict[str, list[Region]] = {}
    for rule, regions in applicable.items():
        if isinstance(regions, Region):
            regions = [regions]
        regs = [r for r in regions if not r.empty]
        normalized[rule] = regs
        for r in regs:
            row_cuts.update((r.row_lo, r.row_hi))
            col_cuts.update((r.col_lo, r.col_hi))
    rows = sorted(c for c in row_cuts if output.row_lo <= c <= output.row_hi)
    cols = sorted(c for c in col_cuts if output.col_lo <= c <= output.col_hi)
    cells: list[ChoiceGridCell] = []
    for r_lo, r_hi in zip(rows[:-1], rows[1:]):
        for c_lo, c_hi in zip(cols[:-1], cols[1:]):
            cell_region = Region(r_lo, r_hi, c_lo, c_hi)
            if cell_region.empty:
                continue
            covering = frozenset(
                rule
                for rule, regs in normalized.items()
                if any(
                    reg.row_lo <= r_lo
                    and reg.row_hi >= r_hi
                    and reg.col_lo <= c_lo
                    and reg.col_hi >= c_hi
                    for reg in regs
                )
            )
            cells.append(ChoiceGridCell(cell_region, covering))
    return ChoiceGrid(output=output, cells=tuple(cells))
