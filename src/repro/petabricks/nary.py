"""N-ary search over scalar tunables.

"PetaBricks uses an n-ary search tuning algorithm to optimize additional
parameters such as parallel-sequential cutoff points ... block sizes ...
as well as user specified tunable parameters." (section 3.2.2)

The search evaluates ``arity`` evenly spaced probes in the current range,
narrows to the bracket around the best probe, and repeats until the range
collapses.  For the unimodal cost surfaces cutoffs produce this converges
to the minimum with O(arity * log(range)) evaluations.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["nary_search"]


def nary_search(
    objective: Callable[[int], float],
    lo: int,
    hi: int,
    arity: int = 4,
    max_rounds: int = 32,
) -> tuple[int, float]:
    """Minimize ``objective`` over integers in [lo, hi].

    Returns (best_value, best_objective).  Each evaluation is memoized, so
    repeated probes at bracket edges are free.
    """
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    if arity < 2:
        raise ValueError("arity must be >= 2")
    cache: dict[int, float] = {}

    def measure(x: int) -> float:
        if x not in cache:
            cache[x] = objective(x)
        return cache[x]

    for _ in range(max_rounds):
        if hi - lo <= arity:
            break
        span = hi - lo
        probes = sorted({lo + (span * i) // (arity - 1) for i in range(arity)})
        best = min(probes, key=measure)
        idx = probes.index(best)
        lo = probes[idx - 1] if idx > 0 else probes[0]
        hi = probes[idx + 1] if idx < len(probes) - 1 else probes[-1]
    best_value = min(range(lo, hi + 1), key=measure)
    return best_value, cache[best_value]
