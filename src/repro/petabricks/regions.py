"""Matrix regions and applicable-region inference.

The PetaBricks compiler's first phase computes, for every rule, the region
of the output where the rule can legally apply (section 3.2.1).  Regions
here are half-open 2-D rectangles over matrix indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Region", "applicable_region", "region_intersection"]


@dataclass(frozen=True, order=True)
class Region:
    """Half-open rectangle [row_lo, row_hi) x [col_lo, col_hi)."""

    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int

    def __post_init__(self) -> None:
        if self.row_hi < self.row_lo or self.col_hi < self.col_lo:
            raise ValueError(f"negative extent: {self}")

    @property
    def empty(self) -> bool:
        return self.row_hi == self.row_lo or self.col_hi == self.col_lo

    @property
    def area(self) -> int:
        return (self.row_hi - self.row_lo) * (self.col_hi - self.col_lo)

    def contains(self, row: int, col: int) -> bool:
        return self.row_lo <= row < self.row_hi and self.col_lo <= col < self.col_hi

    def shrink(self, top: int, bottom: int, left: int, right: int) -> "Region":
        """Region minus a margin on each side (clamped to empty)."""
        row_lo = self.row_lo + top
        row_hi = max(self.row_hi - bottom, row_lo)
        col_lo = self.col_lo + left
        col_hi = max(self.col_hi - right, col_lo)
        return Region(row_lo, row_hi, col_lo, col_hi)


def region_intersection(a: Region, b: Region) -> Region:
    """Largest region inside both (possibly empty)."""
    row_lo = max(a.row_lo, b.row_lo)
    row_hi = max(min(a.row_hi, b.row_hi), row_lo)
    col_lo = max(a.col_lo, b.col_lo)
    col_hi = max(min(a.col_hi, b.col_hi), col_lo)
    return Region(row_lo, row_hi, col_lo, col_hi)


def applicable_region(
    output: Region, stencil_offsets: Iterable[tuple[int, int]]
) -> Region:
    """Where a stencil rule with the given input offsets can legally apply.

    A rule reading offset (dr, dc) cannot compute output cells within
    |dr| of the vertical edge it points past (similarly for columns) —
    the inference the PetaBricks compiler performs to find corner cases.
    """
    top = bottom = left = right = 0
    for dr, dc in stencil_offsets:
        if dr < 0:
            top = max(top, -dr)
        elif dr > 0:
            bottom = max(bottom, dr)
        if dc < 0:
            left = max(left, -dc)
        elif dc > 0:
            right = max(right, dc)
    return output.shrink(top, bottom, left, right)
