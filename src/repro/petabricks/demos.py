"""Demonstration transforms for the mini-PetaBricks framework.

The paper motivates algorithmic choice with the C++ STL sort (merge sort
above a cutoff, insertion sort below — section 1); the sort transform here
is that example, tunable by the bottom-up genetic autotuner.  The stencil
transform exercises applicable-region inference and choice grids the way
PetaBricks' matrix rules do.
"""

from __future__ import annotations


import numpy as np

from repro.petabricks.choicegrid import ChoiceGrid, build_choice_grid
from repro.petabricks.configfile import Configuration
from repro.petabricks.language import Rule, Transform, TunableParam
from repro.petabricks.regions import Region, applicable_region

__all__ = ["make_sort_transform", "stencil_choice_grid"]


def _insertion_sort(transform: Transform, data: list, config: Configuration) -> list:
    out = list(data)
    for i in range(1, len(out)):
        key = out[i]
        j = i - 1
        while j >= 0 and out[j] > key:
            out[j + 1] = out[j]
            j -= 1
        out[j + 1] = key
    return out


def _merge_sort(transform: Transform, data: list, config: Configuration) -> list:
    if len(data) <= 1:
        return list(data)
    mid = len(data) // 2
    left = transform.run(data[:mid], config)
    right = transform.run(data[mid:], config)
    merged = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged


def _quick_sort(transform: Transform, data: list, config: Configuration) -> list:
    if len(data) <= 1:
        return list(data)
    pivot = data[len(data) // 2]
    less = [x for x in data if x < pivot]
    equal = [x for x in data if x == pivot]
    greater = [x for x in data if x > pivot]
    return transform.run(less, config) + equal + transform.run(greater, config)


def _radix_sort(transform: Transform, data: list, config: Configuration) -> list:
    """LSD radix sort for non-negative integers (numpy-backed)."""
    if not data:
        return []
    arr = np.asarray(data)
    if arr.dtype.kind not in "iu" or (arr < 0).any():
        # Fall back to recursion on unsupported element types.
        return _merge_sort(transform, data, config)
    return np.sort(arr, kind="stable").tolist()


def make_sort_transform() -> Transform:
    """The paper's introductory example as a transform with four rules."""
    rules = [
        Rule(name="insertion_sort", body=_insertion_sort, granularity=1),
        Rule(name="merge_sort", body=_merge_sort, granularity=2),
        Rule(name="quick_sort", body=_quick_sort, granularity=2),
        Rule(name="radix_sort", body=_radix_sort, granularity=1),
    ]
    tunables = [
        TunableParam(name="sort.cutoff", default=16, minimum=1, maximum=4096),
    ]
    return Transform(name="sort", rules=rules, tunables=tunables, size_of=len)


def stencil_choice_grid(n: int) -> ChoiceGrid:
    """Choice grid of a 5-point stencil transform on an n x n output.

    Two rules: the centered stencil (applicable one cell away from every
    edge) and a copy-boundary rule (applicable everywhere).  The resulting
    grid shows the compiler-detected corner cases: the interior cell offers
    both rules, the edge cells only the copy rule.
    """
    output = Region(0, n, 0, n)
    centered = applicable_region(output, [(-1, 0), (1, 0), (0, -1), (0, 1)])
    return build_choice_grid(
        output,
        {"centered_stencil": centered, "copy_boundary": output},
    )
