"""The choice dependency graph (section 3.2.1).

"Finally, a choice dependency graph is constructed and analyzed ...  Each
edge is annotated with the set of choices that require that edge, a
direction of the data dependency, and an offset between rule centers."
The graph drives both code generation (schedule order) and the parallel
scheduler (which regions may run concurrently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import networkx as nx

__all__ = ["ChoiceDependencyGraph", "DependencyEdge"]


@dataclass(frozen=True)
class DependencyEdge:
    """Annotation of one data dependency between symbolic regions."""

    choices: frozenset[str]
    direction: tuple[int, int]
    offset: tuple[int, int] = (0, 0)


class ChoiceDependencyGraph:
    """Directed graph over symbolic regions with annotated edges."""

    def __init__(self) -> None:
        self._g = nx.MultiDiGraph()

    def add_region(self, region: Hashable, **attrs) -> None:
        self._g.add_node(region, **attrs)

    def add_dependency(
        self,
        src: Hashable,
        dst: Hashable,
        choices: Iterable[str],
        direction: tuple[int, int] = (0, 0),
        offset: tuple[int, int] = (0, 0),
    ) -> None:
        """``dst`` reads data produced at ``src`` under the given choices."""
        for node in (src, dst):
            if node not in self._g:
                self._g.add_node(node)
        self._g.add_edge(
            src,
            dst,
            annotation=DependencyEdge(frozenset(choices), direction, offset),
        )

    def regions(self) -> list[Hashable]:
        return list(self._g.nodes)

    def edges(self) -> list[tuple[Hashable, Hashable, DependencyEdge]]:
        return [(u, v, d["annotation"]) for u, v, d in self._g.edges(data=True)]

    def restricted(self, active_choices: Iterable[str]) -> "ChoiceDependencyGraph":
        """Subgraph keeping only edges required by the active choices."""
        active = set(active_choices)
        out = ChoiceDependencyGraph()
        for node, attrs in self._g.nodes(data=True):
            out.add_region(node, **attrs)
        for u, v, d in self._g.edges(data=True):
            ann: DependencyEdge = d["annotation"]
            if ann.choices & active:
                out._g.add_edge(u, v, annotation=ann)
        return out

    def schedule(self) -> list[Hashable]:
        """Topological evaluation order of regions (raises on cycles).

        Cycles mean the active choice set has circular data dependencies —
        in PetaBricks those parameters are tuned together; for execution
        they are an error.
        """
        plain = nx.DiGraph(self._g)
        if not nx.is_directed_acyclic_graph(plain):
            cycle = nx.find_cycle(plain)
            raise ValueError(f"choice dependency cycle: {cycle}")
        return list(nx.topological_sort(plain))

    def parallel_stages(self) -> list[list[Hashable]]:
        """Antichains of regions that may execute concurrently, in order."""
        plain = nx.DiGraph(self._g)
        if not nx.is_directed_acyclic_graph(plain):
            raise ValueError("cannot stage a cyclic dependency graph")
        depth: dict[Hashable, int] = {}
        for node in nx.topological_sort(plain):
            depth[node] = 1 + max(
                (depth[p] for p in plain.predecessors(node)), default=-1
            )
        stages: dict[int, list[Hashable]] = {}
        for node, d in depth.items():
            stages.setdefault(d, []).append(node)
        return [sorted(stages[d], key=repr) for d in sorted(stages)]
