"""Tuned-plan configuration files.

PetaBricks compiles a program once and stores tuning decisions in a
configuration file that later runs load ("generating an optimized
configuration file; subsequent runs can then use the saved configuration
file", section 3.2.1).  This module is that artifact for our plans: plans
round-trip through JSON, including metadata (but not audit records, which
are in-memory only).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.tuner.choices import choice_from_dict, choice_to_dict
from repro.tuner.plan import TunedFullMGPlan, TunedVPlan

__all__ = [
    "load_plan",
    "plan_from_dict",
    "plan_to_dict",
    "save_plan",
]

_FORMAT = "repro-multigrid-config-v1"


def _table_to_list(table: dict) -> list[dict[str, Any]]:
    return [
        {"level": level, "accuracy_index": i, "choice": choice_to_dict(choice)}
        for (level, i), choice in sorted(table.items())
    ]


def _table_from_list(items: list[dict[str, Any]]) -> dict:
    return {
        (int(it["level"]), int(it["accuracy_index"])): choice_from_dict(it["choice"])
        for it in items
    }


def _clean_metadata(metadata: dict) -> dict:
    return {k: v for k, v in metadata.items() if k != "audit"}


def plan_to_dict(plan: TunedVPlan | TunedFullMGPlan) -> dict[str, Any]:
    """JSON-ready dict form of a tuned plan.

    ``ndim`` is serialized only when non-default (3-D), and the per-level
    kernel ``backends`` map only when non-empty, so default-path plan JSON
    — including every previously stored artifact — stays byte-identical.
    """
    if isinstance(plan, TunedFullMGPlan):
        out: dict[str, Any] = {
            "format": _FORMAT,
            "kind": "full-multigrid",
            "accuracies": list(plan.accuracies),
            "max_level": plan.max_level,
            "table": _table_to_list(plan.table),
            "metadata": _clean_metadata(plan.metadata),
            "vplan": plan_to_dict(plan.vplan),
        }
        if plan.ndim != 2:
            out["ndim"] = plan.ndim
        return out
    if isinstance(plan, TunedVPlan):
        out = {
            "format": _FORMAT,
            "kind": "multigrid-v",
            "accuracies": list(plan.accuracies),
            "max_level": plan.max_level,
            "table": _table_to_list(plan.table),
            "metadata": _clean_metadata(plan.metadata),
        }
        if plan.ndim != 2:
            out["ndim"] = plan.ndim
        if plan.backends:
            out["backends"] = {
                str(level): name for level, name in sorted(plan.backends.items())
            }
        return out
    raise TypeError(f"not a tuned plan: {plan!r}")


def plan_from_dict(data: dict[str, Any]) -> TunedVPlan | TunedFullMGPlan:
    """Inverse of :func:`plan_to_dict` (validates structure via the plan
    constructors)."""
    if data.get("format") != _FORMAT:
        raise ValueError(f"unknown config format {data.get('format')!r}")
    kind = data.get("kind")
    accuracies = tuple(float(a) for a in data["accuracies"])
    table = _table_from_list(data["table"])
    metadata = dict(data.get("metadata", {}))
    ndim = int(data.get("ndim", 2))
    if kind == "multigrid-v":
        return TunedVPlan(
            accuracies=accuracies,
            max_level=int(data["max_level"]),
            table=table,
            metadata=metadata,
            ndim=ndim,
            backends={
                int(level): str(name)
                for level, name in data.get("backends", {}).items()
            },
        )
    if kind == "full-multigrid":
        vplan = plan_from_dict(data["vplan"])
        if not isinstance(vplan, TunedVPlan):
            raise ValueError("full-MG config must embed a multigrid-v plan")
        return TunedFullMGPlan(
            accuracies=accuracies,
            max_level=int(data["max_level"]),
            table=table,
            vplan=vplan,
            metadata=metadata,
            ndim=ndim,
        )
    raise ValueError(f"unknown plan kind {kind!r}")


def save_plan(plan: TunedVPlan | TunedFullMGPlan, path: str | Path) -> None:
    """Write the plan's configuration file (pretty-printed JSON)."""
    Path(path).write_text(json.dumps(plan_to_dict(plan), indent=2, sort_keys=True))


def load_plan(path: str | Path) -> TunedVPlan | TunedFullMGPlan:
    """Load a configuration file saved by :func:`save_plan`."""
    return plan_from_dict(json.loads(Path(path).read_text()))
