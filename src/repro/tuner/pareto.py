"""The full dynamic-programming solution of section 2.2.

Instead of remembering one algorithm per discrete accuracy cutoff, the full
DP keeps the whole optimal *set* A_k — every algorithm not dominated in
both accuracy and time — and builds A_k from A_{k-1} by substituting each
member into RECURSE and sweeping iteration counts.  The paper notes this
set "can grow to be very large", motivating the discrete approximation of
section 2.3; we cap the kept set and use this implementation for the
ablation comparing full vs discrete DP on small problems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.grids.poisson import residual
from repro.grids.transfer import interpolate_correction, restrict_full_weighting
from repro.linalg.direct import DirectSolver
from repro.machines.meter import OpMeter
from repro.relax.sor import sor_redblack
from repro.relax.weights import OMEGA_RECURSE, omega_opt
from repro.tuner.plan import recurse_wrapper_meter
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.util.validation import size_of_level

__all__ = ["ParetoAlgorithm", "ParetoPoint", "ParetoTuner", "pareto_front"]


@dataclass(frozen=True)
class ParetoAlgorithm:
    """A concrete cycle shape: direct, SOR^s, or (RECURSE with child)^t."""

    kind: str  # "direct" | "sor" | "recurse"
    iterations: int = 1
    child: Optional["ParetoAlgorithm"] = None

    def describe(self) -> str:
        if self.kind == "direct":
            return "direct"
        if self.kind == "sor":
            return f"sor^{self.iterations}"
        assert self.child is not None
        return f"(recurse[{self.child.describe()}])^{self.iterations}"

    def execute(self, x: np.ndarray, b: np.ndarray, direct: DirectSolver) -> np.ndarray:
        """Run this algorithm on (x, b) in place."""
        n = x.shape[0]
        if self.kind == "direct":
            direct.solve(x, b)
            return x
        if self.kind == "sor":
            sor_redblack(x, b, omega_opt(n), self.iterations)
            return x
        assert self.child is not None
        for _ in range(self.iterations):
            sor_redblack(x, b, OMEGA_RECURSE, 1)
            rc = restrict_full_weighting(residual(x, b))
            ec = np.zeros_like(rc)
            self.child.execute(ec, rc, direct)
            interpolate_correction(x, ec)
            sor_redblack(x, b, OMEGA_RECURSE, 1)
        return x

    def meter(self, n: int) -> OpMeter:
        """Exact op multiset at fine size ``n``."""
        m = OpMeter()
        if self.kind == "direct":
            m.charge("direct", n)
        elif self.kind == "sor":
            m.charge("relax", n, self.iterations)
        else:
            assert self.child is not None
            unit = recurse_wrapper_meter(n)
            unit.merge(self.child.meter((n - 1) // 2 + 1))
            m.merge(unit, times=self.iterations)
        return m


@dataclass(frozen=True)
class ParetoPoint:
    """One member of the optimal set: (algorithm, time, worst-case accuracy)."""

    algorithm: ParetoAlgorithm
    seconds: float
    accuracy: float


def pareto_front(points: Sequence[ParetoPoint], max_size: int | None = None) -> list[ParetoPoint]:
    """Non-dominated subset (faster or more accurate), sorted by time.

    Capping keeps the members whose accuracies are most spread out in log
    space (always retaining the fastest and the most accurate), mirroring
    the paper's motivation for discretizing.
    """
    ordered = sorted(points, key=lambda p: (p.seconds, -p.accuracy))
    front: list[ParetoPoint] = []
    best_acc = -math.inf
    for p in ordered:
        if p.accuracy > best_acc:
            front.append(p)
            best_acc = p.accuracy
    if max_size is None or len(front) <= max_size:
        return front
    # Thin by accuracy spacing, keeping endpoints.
    kept = [front[0]]
    inner = front[1:-1]
    want = max_size - 2
    if want > 0 and inner:
        logs = np.log10([max(p.accuracy, 1e-300) for p in inner])
        targets = np.linspace(logs[0], logs[-1], want)
        used: set[int] = set()
        for t in targets:
            idx = int(np.argmin(np.abs(logs - t)))
            if idx not in used:
                used.add(idx)
                kept.append(inner[idx])
    kept.append(front[-1])
    kept.sort(key=lambda p: p.seconds)
    return kept


@dataclass
class ParetoTuner:
    """Builds the optimal sets A_1..A_max_level of section 2.2.

    Intended for small levels (the search is exponential without capping);
    the discrete tuner is the production path.
    """

    max_level: int
    training: TrainingData = field(default_factory=TrainingData)
    timing: CostModelTiming | None = None
    max_set_size: int = 12
    max_sor_iters: int = 64
    max_recurse_iters: int = 6
    direct: DirectSolver | None = None

    def __post_init__(self) -> None:
        if self.training.ndim != 2:
            # The full-DP ablation executes and meters the raw 2-D
            # constant-coefficient kernels (band-Cholesky direct, 5-point
            # SOR); silently running it on a 3-D training operator would
            # price n**3 work with n**2 shapes.  The discrete tuners are
            # the dimension-general path.
            raise ValueError(
                "ParetoTuner is a 2-D constant-coefficient ablation tool; "
                "use VCycleTuner/FullMGTuner for 3-D operators"
            )
        if self.timing is None:
            from repro.machines.presets import INTEL_HARPERTOWN

            self.timing = CostModelTiming(INTEL_HARPERTOWN)
        self.direct = self.direct or DirectSolver(backend="block", cache_factorization=True)

    def tune(self) -> dict[int, list[ParetoPoint]]:
        """Return the optimal set per level."""
        sets: dict[int, list[ParetoPoint]] = {}
        base = ParetoAlgorithm(kind="direct")
        sets[1] = [self._point(base, level=1)]
        for level in range(2, self.max_level + 1):
            sets[level] = self._build_level(level, sets[level - 1])
        return sets

    # ------------------------------------------------------------------

    def _point(self, algo: ParetoAlgorithm, level: int) -> ParetoPoint:
        n = size_of_level(level)
        seconds = self.timing.profile.price(algo.meter(n), self.timing.threads)
        accuracy = self._worst_accuracy(algo, level)
        return ParetoPoint(algo, seconds, accuracy)

    def _worst_accuracy(self, algo: ParetoAlgorithm, level: int) -> float:
        bundle = self.training.at_level(level)
        worst = math.inf
        for (x, b), judge in zip(bundle.fresh_starts(), bundle.judges):
            algo.execute(x, b, self.direct)
            worst = min(worst, judge.accuracy_of(x))
        return worst

    def _build_level(self, level: int, below: list[ParetoPoint]) -> list[ParetoPoint]:
        candidates: list[ParetoPoint] = []
        bundle = self.training.at_level(level)
        candidates.append(self._point(ParetoAlgorithm(kind="direct"), level))
        # SOR with every sweep count up to the cap, measured incrementally.
        candidates.extend(self._incremental_family(level, bundle, None))
        # RECURSE around every member of the coarse optimal set.
        for member in below:
            candidates.extend(self._incremental_family(level, bundle, member.algorithm))
        return pareto_front(candidates, self.max_set_size)

    def _incremental_family(
        self, level: int, bundle, child: ParetoAlgorithm | None
    ) -> list[ParetoPoint]:
        """Points for algo^t, t = 1..cap, reusing state across t."""
        n = size_of_level(level)
        starts = bundle.fresh_starts()
        judges = bundle.judges
        cap = self.max_sor_iters if child is None else self.max_recurse_iters
        omega = omega_opt(n)
        points: list[ParetoPoint] = []
        if child is None:
            unit = OpMeter()
            unit.charge("relax", n)
        else:
            unit = recurse_wrapper_meter(n)
            unit.merge(child.meter((n - 1) // 2 + 1))
        unit_seconds = self.timing.profile.price(unit, self.timing.threads)
        for t in range(1, cap + 1):
            worst = math.inf
            for (x, b), judge in zip(starts, judges):
                if child is None:
                    sor_redblack(x, b, omega, 1)
                else:
                    sor_redblack(x, b, OMEGA_RECURSE, 1)
                    rc = restrict_full_weighting(residual(x, b))
                    ec = np.zeros_like(rc)
                    child.execute(ec, rc, self.direct)
                    interpolate_correction(x, ec)
                    sor_redblack(x, b, OMEGA_RECURSE, 1)
                worst = min(worst, judge.accuracy_of(x))
            algo = (
                ParetoAlgorithm(kind="sor", iterations=t)
                if child is None
                else ParetoAlgorithm(kind="recurse", iterations=t, child=child)
            )
            points.append(ParetoPoint(algo, unit_seconds * t, worst))
        return points
