"""Autotuning full multigrid (paper section 2.4).

FULL-MULTIGRID_i either solves directly or runs ESTIMATE_j — a recursive
FULL-MULTIGRID_j call on the restricted residual problem — and then
iterates a V-type solver (SOR(omega_opt) or RECURSE_l) until accuracy p_i.
j and l are chosen independently: "in cases where the user does not require
much accuracy ... it may make sense to invest more heavily in the
estimation phase, while in cases where very high precision is needed ...
most of the computation would be done in relaxations at the highest
resolution."

The DP tunes the V family first (it is the solve-phase building block),
then builds FULL-MULTIGRID bottom-up the same way.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Union

import numpy as np

from repro.accuracy.estimator import (
    Aggregate,
    InfeasibleCandidate,
    iterations_to_accuracy,
)
from repro.grids.transfer import interpolate_correction, restrict_full_weighting
from repro.linalg.direct import DirectSolver
from repro.machines.meter import NULL_METER, OpMeter, backend_op, dim_op
from repro.tuner.choices import (
    Choice,
    DirectChoice,
    EstimateChoice,
    RecurseChoice,
    SORChoice,
)
from repro.tuner.dp import (
    CandidateOutcome,
    CandidateReport,
    _parallel,
    operator_sor_step,
    tuning_metadata,
)
from repro.tuner.executor import PlanExecutor
from repro.tuner.plan import TunedFullMGPlan, TunedVPlan, recurse_wrapper_meter
from repro.tuner.timing import CostModelTiming, TimingStrategy
from repro.tuner.trace import NULL_TRACE
from repro.tuner.training import TrainingData
from repro.util.validation import size_of_level

__all__ = ["FullMGTuner"]


class _FullTableView:
    """Duck-typed full-MG plan over a partially built table."""

    __slots__ = ("table", "vplan", "max_level")

    def __init__(
        self,
        table: dict[tuple[int, int], Choice],
        vplan: TunedVPlan,
        max_level: int,
    ) -> None:
        self.table = table
        self.vplan = vplan
        self.max_level = max_level

    def choice(self, level: int, acc_index: int) -> Choice:
        return self.table[(level, acc_index)]

    def backend_at(self, level: int) -> str:
        return self.vplan.backend_at(level)


@dataclass
class FullMGTuner:
    """Tunes the FULL-MULTIGRID_i family on top of a tuned V plan."""

    vplan: TunedVPlan
    training: TrainingData = field(default_factory=TrainingData)
    timing: TimingStrategy | None = None
    max_sor_iters: int = 400
    max_recurse_iters: int = 64
    aggregate: Aggregate = "max"
    direct: DirectSolver | None = None
    keep_audit: bool = True
    #: optional :class:`repro.store.sink.TrialSink` (see VCycleTuner.sink)
    sink: Any | None = None
    #: optional :class:`repro.parallel.TrialExecutor` (see
    #: VCycleTuner.trial_executor); parallel executors evaluate each
    #: level's estimate variants in worker processes
    trial_executor: Any | None = None

    def __post_init__(self) -> None:
        vplan_operator = self.vplan.metadata.get("operator", "poisson")
        if vplan_operator != self.training.operator_name:
            raise ValueError(
                f"vplan was tuned for operator {vplan_operator!r}; full-MG "
                f"training uses {self.training.operator_name!r} — its solve "
                f"phase would reuse iteration ladders trained on a different "
                f"operator"
            )
        if self.timing is None:
            from repro.machines.presets import INTEL_HARPERTOWN

            self.timing = CostModelTiming(INTEL_HARPERTOWN)
        if not isinstance(self.timing, CostModelTiming):
            raise NotImplementedError(
                "FullMGTuner times composite candidates via op pricing; "
                "use CostModelTiming (wallclock mode is available for the "
                "V-cycle tuner)"
            )
        self.direct = self.direct or DirectSolver(backend="block", cache_factorization=True)
        self._executor = PlanExecutor(direct=self.direct, operator=self.training.operator)
        #: grid dimensionality of the training operator (op vocabulary)
        self._ndim = self.training.ndim

    def _backend_at(self, level: int) -> str:
        """Full MG inherits the V plan's per-level backend placement."""
        return self.vplan.backend_at(level)

    def tune(self, max_level: int | None = None) -> TunedFullMGPlan:
        start = time.perf_counter()
        max_level = max_level or self.vplan.max_level
        if max_level > self.vplan.max_level:
            raise ValueError("full-MG level cannot exceed the V plan's max level")
        accuracies = self.vplan.accuracies
        m = len(accuracies)
        table: dict[tuple[int, int], Choice] = {}
        audit: list[CandidateReport] = []
        for i in range(m):
            table[(1, i)] = DirectChoice()
        for level in range(2, max_level + 1):
            self._tune_level(level, table, audit)
        metadata = tuning_metadata(
            "full-multigrid", self.training, self.timing, self.aggregate
        )
        if self.vplan.metadata.get("backend"):
            metadata["backend"] = self.vplan.metadata["backend"]
        if self.keep_audit:
            metadata["audit"] = audit
        plan = TunedFullMGPlan(
            accuracies=accuracies,
            max_level=max_level,
            table=table,
            vplan=self.vplan,
            metadata=metadata,
            ndim=self._ndim,
        )
        if self.sink is not None:
            from repro.store.sink import emit_tuning_trial

            emit_tuning_trial(
                self.sink, plan, self.timing, self.training,
                wall_seconds=time.perf_counter() - start,
            )
        return plan

    # ------------------------------------------------------------------

    def _fmg_meter(self, table: dict[tuple[int, int], Choice], level: int, j: int) -> OpMeter:
        """Unit meter of the partially built FULL-MULTIGRID_j at ``level``."""
        meter = OpMeter()
        choice = table[(level, j)]
        n = size_of_level(level)
        nd = self._ndim
        backend = self._backend_at(level)
        if isinstance(choice, DirectChoice):
            meter.charge(dim_op("direct", nd), n)
        elif isinstance(choice, EstimateChoice):
            meter.charge(backend_op(dim_op("residual", nd), backend), n)
            meter.charge(backend_op(dim_op("restrict", nd), backend), n)
            meter.merge(self._fmg_meter(table, level - 1, choice.estimate_accuracy))
            meter.charge(backend_op(dim_op("interpolate", nd), backend), n)
            solver = choice.solver
            if isinstance(solver, SORChoice):
                meter.charge(
                    backend_op(dim_op("relax", nd), backend), n, solver.iterations
                )
            else:
                wrapper = recurse_wrapper_meter(n, nd, backend)
                wrapper.merge(self.vplan.unit_meter(level - 1, solver.sub_accuracy))
                meter.merge(wrapper, times=solver.iterations)
        return meter

    def _estimate_meter(
        self, table: dict[tuple[int, int], Choice], level: int, j: int
    ) -> OpMeter:
        """Unit meter of one ESTIMATE_j application at ``level``."""
        n = size_of_level(level)
        nd = self._ndim
        backend = self._backend_at(level)
        est_meter = OpMeter()
        est_meter.charge(backend_op(dim_op("residual", nd), backend), n)
        est_meter.charge(backend_op(dim_op("restrict", nd), backend), n)
        est_meter.merge(self._fmg_meter(table, level - 1, j))
        est_meter.charge(backend_op(dim_op("interpolate", nd), backend), n)
        return est_meter

    def _estimate_states(
        self, view: _FullTableView, bundle, level: int, j: int
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Post-ESTIMATE_j states of every training instance."""
        states = []
        for x, b in bundle.fresh_starts():
            self._run_estimate(view, x, b, level, j)
            states.append((x, b))
        return states

    def _tune_level(
        self,
        level: int,
        table: dict[tuple[int, int], Choice],
        audit: list[CandidateReport],
    ) -> None:
        if _parallel(self.trial_executor):
            from repro.parallel.dp_tasks import tune_fmg_level_parallel

            tune_fmg_level_parallel(self, level, table, audit)
            return
        n = size_of_level(level)
        bundle = self.training.at_level(level)
        accuracies = self.vplan.accuracies
        m = len(accuracies)
        view = _FullTableView(table, self.vplan, level)

        # Run each estimation variant once per training instance; every
        # solver variant continues from copies of these states.
        estimate_states = [
            self._estimate_states(view, bundle, level, j) for j in range(m)
        ]
        estimate_meters = [self._estimate_meter(table, level, j) for j in range(m)]

        for i, target in enumerate(accuracies):
            choice, reports = self._evaluate_slot(
                level, i, target, n, bundle, estimate_states, estimate_meters
            )
            table[(level, i)] = choice
            if self.keep_audit:
                audit.extend(reports)

    def _run_estimate(self, view: _FullTableView, x, b, level: int, j: int) -> None:
        """Apply ESTIMATE_j to (x, b) in place using the partial table."""
        r = self._executor._op(level).residual(x, b)
        rc = restrict_full_weighting(r)
        ec = np.zeros_like(rc)
        self._executor._run_full(view, ec, rc, level - 1, j, NULL_METER, NULL_TRACE)
        interpolate_correction(x, ec)

    def _variant_order(self) -> list[tuple[str, int | None]]:
        """Solver-variant enumeration order for one estimate accuracy j:
        SOR(omega_opt) first, then RECURSE_l highest l first.  Serial
        pruning and parallel selection both follow this order."""
        m = len(self.vplan.accuracies)
        order: list[tuple[str, int | None]] = [("sor", None)]
        order.extend(("recurse", sub) for sub in range(m - 1, -1, -1))
        return order

    def _evaluate_slot(
        self,
        level: int,
        acc_index: int,
        target: float,
        n: int,
        bundle,
        estimate_states,
        estimate_meters,
    ) -> tuple[Choice, list[CandidateReport]]:
        m = len(self.vplan.accuracies)
        reports: list[CandidateReport] = []
        best_choice: Choice | None = None
        best_time = math.inf

        def fold(outcome: CandidateOutcome) -> None:
            nonlocal best_choice, best_time
            reports.append(
                CandidateReport(
                    level, acc_index, outcome.description, outcome.seconds,
                    outcome.feasible, False,
                )
            )
            if outcome.feasible and outcome.seconds < best_time:
                best_choice, best_time = outcome.choice, outcome.seconds

        fold(self._evaluate_direct(n, bundle))
        for j in range(m):
            for kind, sub in self._variant_order():
                outcome = self._evaluate_variant(
                    level, acc_index, target, n, bundle, j, kind, sub,
                    estimate_states[j], estimate_meters[j], best_time,
                )
                if outcome is None:
                    continue
                fold(outcome)

        assert best_choice is not None  # direct is always considered
        final = best_choice
        out: list[CandidateReport] = [
            CandidateReport(
                r.level,
                r.acc_index,
                r.description,
                r.seconds,
                r.feasible,
                chosen=(r.feasible and r.description == final.describe()),
            )
            for r in reports
        ]
        return final, out

    def _evaluate_direct(self, n: int, bundle) -> CandidateOutcome:
        """The always-feasible direct candidate for one slot."""
        direct_meter = OpMeter()
        direct_meter.charge(dim_op("direct", self._ndim), n)
        seconds = self.timing.time_candidate(
            direct_meter, _no_run, bundle.fresh_starts()
        )
        return CandidateOutcome(
            DirectChoice().describe(), seconds, True, DirectChoice()
        )

    def _evaluate_variant(
        self,
        level: int,
        acc_index: int,
        target: float,
        n: int,
        bundle,
        j: int,
        kind: str,
        sub: int | None,
        starts_proto,
        est_meter: OpMeter,
        best_time: float,
    ) -> CandidateOutcome | None:
        """Train and time ESTIMATE_j followed by one solver variant.

        ``best_time`` is the fastest candidate seen so far for this slot
        and drives budget pruning; ``math.inf`` disables it (the parallel
        path — any variant serial pruning would have skipped prices
        strictly worse than the serial winner, so selection agrees).
        Returns ``None`` when the variant is pruned without a report,
        matching the serial enumeration exactly.
        """
        judges = bundle.accuracy_fns()
        est_cost = self._price(est_meter)

        if kind == "sor":
            # Solve phase variant 1: SOR(omega_opt) until p_i.
            relax_op = backend_op(
                dim_op("relax", self._ndim), self._backend_at(level)
            )
            relax_cost = self.timing.op_seconds(relax_op, n)
            cap = self._budget_cap(relax_cost, best_time - est_cost, self.max_sor_iters)
            if cap < 0:
                return None
            try:
                iters = iterations_to_accuracy(
                    self._sor_step(n),
                    [(x.copy(), b) for x, b in starts_proto],
                    judges,
                    target,
                    max_iters=max(cap, 1),
                    aggregate=self.aggregate,
                )
            except InfeasibleCandidate:
                return CandidateOutcome(
                    f"estimate(j={j}) -> sor", math.inf, False, None
                )
            solver: Union[SORChoice, RecurseChoice] = SORChoice(iterations=iters)
            meter = OpMeter()
            meter.merge(est_meter)
            meter.charge(relax_op, n, iters)
            choice = EstimateChoice(j, solver)
            seconds = self.timing.time_candidate(meter, _no_run, bundle.fresh_starts())
            return CandidateOutcome(choice.describe(), seconds, True, choice)

        if kind == "recurse":
            # Solve phase variant 2: RECURSE_l until p_i.
            assert sub is not None
            unit = OpMeter()
            unit.merge(recurse_wrapper_meter(n, self._ndim, self._backend_at(level)))
            unit.merge(self.vplan.unit_meter(level - 1, sub))
            unit_cost = self._price(unit)
            cap = self._budget_cap(
                unit_cost, best_time - est_cost, self.max_recurse_iters
            )
            if cap < 0:
                return None
            step = self._recurse_step(level, sub)
            try:
                iters = iterations_to_accuracy(
                    step,
                    [(x.copy(), b) for x, b in starts_proto],
                    judges,
                    target,
                    max_iters=max(cap, 1),
                    aggregate=self.aggregate,
                )
            except InfeasibleCandidate:
                return CandidateOutcome(
                    f"estimate(j={j}) -> recurse(l={sub})", math.inf, False, None
                )
            solver = RecurseChoice(sub_accuracy=sub, iterations=iters)
            meter = OpMeter()
            meter.merge(est_meter)
            meter.merge(unit.scaled(iters))
            choice = EstimateChoice(j, solver)
            seconds = self.timing.time_candidate(meter, _no_run, bundle.fresh_starts())
            return CandidateOutcome(choice.describe(), seconds, True, choice)

        raise ValueError(f"unknown solver variant kind {kind!r}")

    # ------------------------------------------------------------------

    def _price(self, meter: OpMeter) -> float:
        return sum(
            count * self.timing.op_seconds(op, size) for (op, size), count in meter.items()
        )

    @staticmethod
    def _budget_cap(unit_cost: float, remaining: float, hard_cap: int) -> int:
        if unit_cost <= 0.0 or math.isinf(remaining):
            return hard_cap
        if remaining <= 0.0:
            return -1
        return min(hard_cap, int(remaining / unit_cost) + 1)

    def _sor_step(self, n: int):
        return operator_sor_step(self.training, n)

    def _recurse_step(self, level: int, sub_accuracy: int):
        executor = self._executor
        vplan = self.vplan

        def step(x: np.ndarray, b: np.ndarray) -> None:
            executor._recurse_once(vplan, x, b, level, sub_accuracy, NULL_METER, NULL_TRACE)

        return step


def _no_run(x: np.ndarray, b: np.ndarray) -> None:
    """Placeholder run for cost-model timing of composite candidates."""
