"""Execution traces of tuned algorithms.

A trace is the temporal sequence of primitive events a tuned plan performs,
annotated with recursion levels and accuracy indices.  Figures 4 (call
stacks), 5 and 14 (cycle shapes) of the paper are renderings of exactly
this information; :mod:`repro.cycles` consumes traces to draw them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal

__all__ = ["NULL_TRACE", "Trace", "TraceEvent"]

EventKind = Literal[
    "enter",  # entering MULTIGRID-V_i / FULL-MULTIGRID_i at a level
    "exit",  # leaving it
    "relax",  # one SOR sweep inside RECURSE
    "sor",  # standalone iterated-SOR solve (dashed arrow in Fig 5)
    "direct",  # direct solve (solid arrow in Fig 5)
    "descend",  # residual + restriction to the coarser level
    "ascend",  # interpolation + correction back to the finer level
    "estimate",  # start of a full-MG estimation phase
]


@dataclass(frozen=True)
class TraceEvent:
    kind: EventKind
    level: int
    #: accuracy index for enter/estimate events, sweep count for sor, else 0
    detail: int = 0


class Trace:
    """Append-only event recorder."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, kind: EventKind, level: int, detail: int = 0) -> None:
        self.events.append(TraceEvent(kind, level, detail))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]

    def min_level(self) -> int:
        """Coarsest level the execution touched."""
        if not self.events:
            raise ValueError("empty trace")
        return min(e.level for e in self.events)

    def counts(self, kind: EventKind) -> int:
        return sum(1 for e in self.events if e.kind == kind)


class _NullTrace(Trace):
    """Trace that drops events (default when callers don't need one)."""

    def emit(self, kind: EventKind, level: int, detail: int = 0) -> None:  # noqa: D102
        pass


#: Shared do-nothing trace.
NULL_TRACE = _NullTrace()
