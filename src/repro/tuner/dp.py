"""The discrete dynamic-programming autotuner (paper sections 2.1-2.3).

Bottom-up over levels: level 1 (3x3) is solved directly; at each higher
level k and for each accuracy target p_i, the tuner

1. trains the iteration count of every candidate — SOR(omega_opt) and
   RECURSE_j for each already-tuned sub-accuracy j — on the training
   instances ("the autotuner first computes the number of iterations needed
   for the SOR and RECURSE_j choices", section 4.1),
2. times each feasible candidate (cost model or wall clock), and
3. keeps the fastest, producing the MULTIGRID-V_i family.

Because the optimal choice for accuracy p_i at level k may recurse into
*any* accuracy p_j at level k-1, all accuracies at a level are tuned before
moving up — the paper's key departure from single-accuracy tuning.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.accuracy.estimator import (
    Aggregate,
    InfeasibleCandidate,
    iterations_to_accuracy,
)
from repro.linalg.direct import DirectSolver
from repro.machines.meter import NULL_METER, OpMeter, backend_op, dim_op
from repro.tuner.choices import Choice, DirectChoice, RecurseChoice, SORChoice
from repro.tuner.executor import PlanExecutor
from repro.tuner.plan import DEFAULT_ACCURACIES, TunedVPlan, recurse_wrapper_meter
from repro.tuner.timing import CostModelTiming, TimingStrategy
from repro.tuner.trace import NULL_TRACE
from repro.tuner.training import TrainingData
from repro.util.validation import size_of_level

__all__ = [
    "CandidateOutcome",
    "CandidateReport",
    "VCycleTuner",
    "operator_sor_step",
    "plan_level_backends",
    "tuning_metadata",
]

#: filter(level, acc_index, choice) -> bool; False removes the candidate.
CandidateFilter = Callable[[int, int, Choice], bool]


def tuning_metadata(kind: str, training: TrainingData, timing, aggregate) -> dict:
    """Base metadata of a tuned plan (shared by both DP tuners).

    The operator is recorded only when non-default, so default-path plan
    JSON (and stored registry bytes) match pre-operator-layer plans —
    the rule the solve()-side operator-mismatch check relies on.
    """
    metadata = {
        "kind": kind,
        "distribution": training.distribution,
        "instances": training.instances,
        "seed": training.seed,
        "aggregate": aggregate,
        "timing": type(timing).__name__,
    }
    if not training.operator.is_default_poisson:
        metadata["operator"] = training.operator_name
    profile = getattr(timing, "profile", None)
    if profile is not None:
        metadata["profile"] = profile.name
    return metadata


def level_backend(
    backend: str,
    level: int,
    ndim: int,
    operator,
    timing: TimingStrategy | None,
) -> str:
    """The kernel backend placed at one plan level.

    Pure function of its arguments, so the serial DP and the parallel
    worker pool (which rebuilds tuners from task data) place backends
    identically.  A level gets the accelerated backend when pricing the
    RECURSE wrapper ops there is no more expensive than the reference —
    with :class:`CostModelTiming` that naturally keeps tiny coarse grids
    on NumPy (dispatch overhead dominates) while fine grids accelerate;
    without a cost model (wall-clock tuning) every supported level
    accelerates.  Backends never change numerics, so this is purely a
    pricing decision — iteration training is backend-independent.
    """
    if backend in ("", "numpy") or level < 2:
        return "numpy"
    from repro.kernels import get_backend
    from repro.operators.spec import shared_operator

    probe = shared_operator(operator, size_of_level(2))
    if not get_backend(backend).supports(probe):
        return "numpy"
    if timing is None:
        return backend
    n = size_of_level(level)
    reference = _wrapper_price(timing, n, ndim, "numpy")
    accelerated = _wrapper_price(timing, n, ndim, backend)
    return backend if accelerated <= reference else "numpy"


def plan_level_backends(
    backend: str,
    max_level: int,
    ndim: int,
    operator,
    timing: TimingStrategy | None,
) -> dict[int, str]:
    """Per-level backend placement for a whole plan (non-numpy levels only)."""
    levels: dict[int, str] = {}
    for level in range(2, max_level + 1):
        placed = level_backend(backend, level, ndim, operator, timing)
        if placed != "numpy":
            levels[level] = placed
    return levels


def _wrapper_price(timing: TimingStrategy, n: int, ndim: int, backend: str) -> float:
    meter = recurse_wrapper_meter(n, ndim, backend)
    return sum(
        count * timing.op_seconds(op, size) for (op, size), count in meter.items()
    )


def operator_sor_step(training: TrainingData, n: int):
    """Standalone-SOR candidate step for the training operator at size ``n``."""
    from repro.operators.spec import shared_operator

    op = shared_operator(training.operator, n)
    w = op.omega_opt()

    def step(x: np.ndarray, b: np.ndarray) -> None:
        op.sor_sweeps(x, b, w, 1)

    return step


@dataclass(frozen=True)
class CandidateReport:
    """Audit record of one candidate evaluation (kept in plan metadata)."""

    level: int
    acc_index: int
    description: str
    seconds: float
    feasible: bool
    chosen: bool = False


@dataclass(frozen=True)
class CandidateOutcome:
    """Result of evaluating one candidate for one (level, accuracy) slot.

    Picklable (choices are frozen dataclasses), so parallel trial
    executors can ship outcomes back from worker processes.
    """

    description: str
    seconds: float
    feasible: bool
    choice: Choice | None


class _TableView:
    """Duck-typed plan over a partially built table, for the executor."""

    __slots__ = ("table", "max_level", "backends")

    def __init__(
        self,
        table: dict[tuple[int, int], Choice],
        max_level: int,
        backends: dict[int, str] | None = None,
    ) -> None:
        self.table = table
        self.max_level = max_level
        self.backends = backends or {}

    def choice(self, level: int, acc_index: int) -> Choice:
        return self.table[(level, acc_index)]

    def backend_at(self, level: int) -> str:
        return self.backends.get(level, "numpy")


@dataclass
class VCycleTuner:
    """Tunes the MULTIGRID-V_i family up to ``max_level``.

    Parameters mirror the paper's setup: five discrete accuracy levels by
    default, worst-case aggregation of trained iteration counts, and a
    search capped by per-candidate iteration budgets.  ``candidate_filter``
    restricts the choice set (used to express the heuristic strategies of
    Figure 7 inside the same machinery).
    """

    max_level: int
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES
    training: TrainingData = field(default_factory=TrainingData)
    timing: TimingStrategy | None = None
    max_sor_iters: int = 400
    max_recurse_iters: int = 64
    aggregate: Aggregate = "max"
    direct: DirectSolver | None = None
    candidate_filter: CandidateFilter | None = None
    keep_audit: bool = True
    #: optional :class:`repro.store.sink.TrialSink`; each ``tune()`` call
    #: reports one trial record to it (duck-typed so the tuner layer does
    #: not import the store at module scope)
    sink: Any | None = None
    #: optional :class:`repro.parallel.TrialExecutor`.  ``None`` or a
    #: serial executor keeps the classic in-process DP (bit-identical);
    #: a parallel executor fans each level's candidate evaluations
    #: across worker processes and — because tasks are deterministically
    #: seeded pure data — selects exactly the same plan (duck-typed so
    #: the tuner layer does not import :mod:`repro.parallel` at module
    #: scope)
    trial_executor: Any | None = None
    #: kernel backend tuning dimension: ``"numpy"`` (default, bare-op
    #: pricing and byte-identical plans), an accelerated backend name, or
    #: ``"auto"`` (resolved to the best backend available on this host)
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.max_level < 1:
            raise ValueError("max_level must be >= 1")
        if self.timing is None:
            from repro.machines.presets import INTEL_HARPERTOWN

            self.timing = CostModelTiming(INTEL_HARPERTOWN)
        self.direct = self.direct or DirectSolver(backend="block", cache_factorization=True)
        self._executor = PlanExecutor(direct=self.direct, operator=self.training.operator)
        #: grid dimensionality of the training operator (op vocabulary)
        self._ndim = self.training.ndim
        from repro.kernels import resolve_backend

        self.backend = resolve_backend(self.backend)
        # Lazy per-level backend placement (worker pools reuse one tuner
        # across levels beyond its construction-time max_level).
        self._level_backends: dict[int, str] = {}

    def _backend_at(self, level: int) -> str:
        cached = self._level_backends.get(level)
        if cached is None:
            # Pricing-driven placement needs a cost model; wall-clock
            # tuning accelerates every supported level (cannot price
            # dispatch).
            pricing = self.timing if isinstance(self.timing, CostModelTiming) else None
            cached = level_backend(
                self.backend, level, self._ndim, self.training.operator, pricing
            )
            self._level_backends[level] = cached
        return cached

    def _backends_through(self, level: int) -> dict[int, str]:
        """Backend placement for levels 2..level (non-numpy entries)."""
        return {
            lv: self._backend_at(lv)
            for lv in range(2, level + 1)
            if self._backend_at(lv) != "numpy"
        }

    # -- public API ---------------------------------------------------------

    def tune(self) -> TunedVPlan:
        """Run the bottom-up DP and return the tuned plan."""
        start = time.perf_counter()
        m = len(self.accuracies)
        table: dict[tuple[int, int], Choice] = {}
        audit: list[CandidateReport] = []
        for i in range(m):
            table[(1, i)] = DirectChoice()
        for level in range(2, self.max_level + 1):
            self._tune_level(level, table, audit)
        metadata = tuning_metadata("multigrid-v", self.training, self.timing, self.aggregate)
        if self.backend != "numpy":
            metadata["backend"] = self.backend
        if self.keep_audit:
            metadata["audit"] = audit
        plan = TunedVPlan(
            accuracies=self.accuracies,
            max_level=self.max_level,
            table=table,
            metadata=metadata,
            ndim=self._ndim,
            backends=self._backends_through(self.max_level),
        )
        if self.sink is not None:
            from repro.store.sink import emit_tuning_trial

            emit_tuning_trial(
                self.sink, plan, self.timing, self.training,
                wall_seconds=time.perf_counter() - start,
            )
        return plan

    # -- per-level tuning -----------------------------------------------------

    def _allowed(self, level: int, acc_index: int, choice: Choice) -> bool:
        if self.candidate_filter is None:
            return True
        return self.candidate_filter(level, acc_index, choice)

    def _tune_level(
        self,
        level: int,
        table: dict[tuple[int, int], Choice],
        audit: list[CandidateReport],
    ) -> None:
        if _parallel(self.trial_executor):
            from repro.parallel.dp_tasks import tune_v_level_parallel

            tune_v_level_parallel(self, level, table, audit)
            return
        n = size_of_level(level)
        bundle = self.training.at_level(level)
        view = _TableView(table, level, self._backends_through(level))
        m = len(self.accuracies)
        sub_meters = [self._meter_below(table, level, j) for j in range(m)]
        for i, target in enumerate(self.accuracies):
            best_choice, best_time, reports = self._evaluate_slot(
                level, i, target, n, bundle, view, sub_meters
            )
            table[(level, i)] = best_choice
            if self.keep_audit:
                for rep in reports:
                    audit.append(
                        CandidateReport(
                            level=rep.level,
                            acc_index=rep.acc_index,
                            description=rep.description,
                            seconds=rep.seconds,
                            feasible=rep.feasible,
                            chosen=(
                                rep.feasible
                                and rep.description == _describe(best_choice)
                            ),
                        )
                    )

    def _meter_below(
        self, table: dict[tuple[int, int], Choice], level: int, acc_index: int
    ) -> OpMeter:
        """Exact unit meter of the already-tuned plan entry (level-1, j)."""
        meter = OpMeter()
        choice = table[(level - 1, acc_index)]
        n = size_of_level(level - 1)
        backend = self._backend_at(level - 1)
        if isinstance(choice, DirectChoice):
            meter.charge(dim_op("direct", self._ndim), n)
        elif isinstance(choice, SORChoice):
            meter.charge(
                backend_op(dim_op("relax", self._ndim), backend), n, choice.iterations
            )
        elif isinstance(choice, RecurseChoice):
            wrapper = recurse_wrapper_meter(n, self._ndim, backend)
            wrapper.merge(self._meter_below(table, level - 1, choice.sub_accuracy))
            meter.merge(wrapper, times=choice.iterations)
        return meter

    def _candidate_order(self) -> list[tuple[str, int | None]]:
        """Candidate enumeration order for one slot.

        Direct first, then RECURSE_j highest sub-accuracy first (fewest
        outer iterations, so later candidates get a tight pruning budget
        early), then standalone SOR.  Serial pruning and parallel
        selection both follow this order, which is what makes the two
        paths choose identical plans.
        """
        m = len(self.accuracies)
        order: list[tuple[str, int | None]] = [("direct", None)]
        order.extend(("recurse", j) for j in range(m - 1, -1, -1))
        order.append(("sor", None))
        return order

    def _evaluate_slot(
        self,
        level: int,
        acc_index: int,
        target: float,
        n: int,
        bundle,
        view: _TableView,
        sub_meters: Sequence[OpMeter],
    ) -> tuple[Choice, float, list[CandidateReport]]:
        reports: list[CandidateReport] = []
        best_choice: Choice | None = None
        best_time = math.inf
        for kind, j in self._candidate_order():
            outcome = self._evaluate_candidate(
                level, acc_index, target, n, bundle, view, sub_meters, kind, j, best_time
            )
            if outcome is None:
                continue
            reports.append(
                CandidateReport(
                    level, acc_index, outcome.description, outcome.seconds,
                    outcome.feasible,
                )
            )
            if outcome.feasible and outcome.seconds < best_time:
                best_choice, best_time = outcome.choice, outcome.seconds
        if best_choice is None:
            raise RuntimeError(
                f"no feasible candidate at level {level}, accuracy index {acc_index} "
                f"(candidate_filter too restrictive?)"
            )
        return best_choice, best_time, reports

    def _evaluate_candidate(
        self,
        level: int,
        acc_index: int,
        target: float,
        n: int,
        bundle,
        view: _TableView,
        sub_meters: Sequence[OpMeter],
        kind: str,
        j: int | None,
        best_time: float,
    ) -> CandidateOutcome | None:
        """Train and time one candidate against a pruning budget.

        ``best_time`` is the fastest feasible candidate seen so far for
        this slot; ``math.inf`` disables pruning (the parallel path,
        where candidates are evaluated independently — any candidate
        serial pruning would have rejected prices strictly worse than
        the serial winner, so selection is unaffected).  Returns
        ``None`` when the candidate_filter removes the candidate.
        """
        if kind == "direct":
            # Direct: exact, always feasible.
            if not self._allowed(level, acc_index, DirectChoice()):
                return None
            meter = OpMeter()
            meter.charge(dim_op("direct", self._ndim), n)
            seconds = self.timing.time_candidate(
                meter, self._direct_run(n), bundle.fresh_starts()
            )
            return CandidateOutcome(
                _describe(DirectChoice()), seconds, True, DirectChoice()
            )

        if kind == "recurse":
            assert j is not None
            probe = RecurseChoice(sub_accuracy=j, iterations=1)
            if not self._allowed(level, acc_index, probe):
                return None
            unit = OpMeter()
            unit.merge(recurse_wrapper_meter(n, self._ndim, self._backend_at(level)))
            unit.merge(sub_meters[j])
            unit_cost = self._price_unit(unit)
            cap = self._budget_cap(unit_cost, best_time, self.max_recurse_iters)
            if cap < 1:
                return CandidateOutcome(
                    _describe(probe) + " [pruned]", math.inf, False, None
                )
            step = self._recurse_step(view, level, j)
            try:
                iters = iterations_to_accuracy(
                    step,
                    bundle.fresh_starts(),
                    bundle.accuracy_fns(),
                    target,
                    max_iters=cap,
                    aggregate=self.aggregate,
                )
            except InfeasibleCandidate:
                return CandidateOutcome(_describe(probe), math.inf, False, None)
            iters = max(iters, 1)
            choice = RecurseChoice(sub_accuracy=j, iterations=iters)
            seconds = self.timing.time_candidate(
                unit.scaled(iters), self._v_run(view, level, choice),
                bundle.fresh_starts(),
            )
            return CandidateOutcome(_describe(choice), seconds, True, choice)

        if kind == "sor":
            probe_sor = SORChoice(iterations=1)
            if not self._allowed(level, acc_index, probe_sor):
                return None
            relax_op = backend_op(dim_op("relax", self._ndim), self._backend_at(level))
            relax_cost = self.timing.op_seconds(relax_op, n)
            cap = self._budget_cap(relax_cost, best_time, self.max_sor_iters)
            if cap < 1:
                return CandidateOutcome(
                    _describe(probe_sor) + " [pruned]", math.inf, False, None
                )
            try:
                iters = iterations_to_accuracy(
                    self._sor_step(n),
                    bundle.fresh_starts(),
                    bundle.accuracy_fns(),
                    target,
                    max_iters=cap,
                    aggregate=self.aggregate,
                )
            except InfeasibleCandidate:
                return CandidateOutcome(_describe(probe_sor), math.inf, False, None)
            iters = max(iters, 1)
            choice = SORChoice(iterations=iters)
            meter = OpMeter()
            meter.charge(relax_op, n, iters)
            seconds = self.timing.time_candidate(
                meter, self._v_run(view, level, choice), bundle.fresh_starts()
            )
            return CandidateOutcome(_describe(choice), seconds, True, choice)

        raise ValueError(f"unknown candidate kind {kind!r}")

    # -- candidate step/run closures ---------------------------------------

    def _price_unit(self, unit: OpMeter) -> float:
        return sum(
            count * self.timing.op_seconds(op, size)
            for (op, size), count in unit.items()
        )

    @staticmethod
    def _budget_cap(unit_cost: float, best_time: float, hard_cap: int) -> int:
        """Iterations beyond which a candidate cannot beat ``best_time``."""
        if unit_cost <= 0.0 or math.isinf(best_time):
            return hard_cap
        return min(hard_cap, int(best_time / unit_cost) + 1)

    def _direct_run(self, n: int):
        from repro.operators.spec import shared_operator

        direct = self.direct
        op = shared_operator(self.training.operator, n)

        def run(x: np.ndarray, b: np.ndarray) -> None:
            op.direct_solve(x, b, solver=direct)

        return run

    def _sor_step(self, n: int):
        return operator_sor_step(self.training, n)

    def _recurse_step(self, view: _TableView, level: int, sub_accuracy: int):
        executor = self._executor

        def step(x: np.ndarray, b: np.ndarray) -> None:
            executor._recurse_once(view, x, b, level, sub_accuracy, NULL_METER, NULL_TRACE)

        return step

    def _v_run(self, view: _TableView, level: int, choice: Choice):
        """End-to-end run of a hypothetical slot choice (wallclock timing)."""
        executor = self._executor
        table = dict(view.table)
        table[(level, -1)] = choice
        probe_view = _TableView(table, level, view.backends)

        def run(x: np.ndarray, b: np.ndarray) -> None:
            executor._run_v(probe_view, x, b, level, -1, NULL_METER, NULL_TRACE)

        return run


def _describe(choice: Choice) -> str:
    return choice.describe()


def _parallel(executor: Any) -> bool:
    """True when the executor should trigger the fan-out tuning path."""
    return executor is not None and getattr(executor, "jobs", 1) > 1
