"""Timing strategies for candidate comparison during tuning.

The DP needs "which candidate is fastest".  Two ways to answer:

* :class:`CostModelTiming` — price the candidate's exact op multiset with a
  :class:`~repro.machines.profile.MachineProfile`.  Deterministic, instant,
  and re-targetable to any architecture; the default.
* :class:`WallclockTiming` — execute the candidate on the training
  instances and take the median of repeated wall-clock measurements, the
  way the real PetaBricks autotuner times candidates on the machine it
  runs on.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.machines.meter import OpMeter
from repro.machines.profile import MachineProfile
from repro.util.timing import median_time

__all__ = ["CostModelTiming", "TimingStrategy", "WallclockTiming"]

RunFn = Callable[[np.ndarray, np.ndarray], None]


class TimingStrategy:
    """Interface: seconds for one application of a candidate."""

    def time_candidate(
        self,
        unit_meter: OpMeter,
        run: RunFn,
        starts: Sequence[tuple[np.ndarray, np.ndarray]],
    ) -> float:
        raise NotImplementedError

    def op_seconds(self, op: str, n: int) -> float:
        """Price of a single primitive op (used for budget pruning)."""
        raise NotImplementedError


class CostModelTiming(TimingStrategy):
    def __init__(self, profile: MachineProfile, threads: int | None = None) -> None:
        self.profile = profile
        self.threads = threads

    def time_candidate(
        self,
        unit_meter: OpMeter,
        run: RunFn,
        starts: Sequence[tuple[np.ndarray, np.ndarray]],
    ) -> float:
        return self.profile.price(unit_meter, self.threads)

    def op_seconds(self, op: str, n: int) -> float:
        return self.profile.op_time(op, n, self.threads)


class WallclockTiming(TimingStrategy):
    """Median wall-clock over training instances x repeats.

    Execution mutates fresh copies of the provided starts, so candidates
    with different iteration counts are timed end-to-end, like PetaBricks
    timing a compiled configuration.
    """

    def __init__(self, repeats: int = 3) -> None:
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.repeats = repeats

    def time_candidate(
        self,
        unit_meter: OpMeter,
        run: RunFn,
        starts: Sequence[tuple[np.ndarray, np.ndarray]],
    ) -> float:
        if not starts:
            raise ValueError("wallclock timing needs training instances")
        samples = []
        for x0, b in starts:
            samples.append(median_time(lambda: run(x0.copy(), b), repeats=self.repeats))
        samples.sort()
        return samples[len(samples) // 2]

    def op_seconds(self, op: str, n: int) -> float:
        # No pricing available; disable budget pruning.
        return 0.0
