"""Algorithmic choices — the alternatives the DP selects among.

Each (level, accuracy-index) slot of a tuned plan holds one choice:

* :class:`DirectChoice` — band-Cholesky solve ("Solve directly").
* :class:`SORChoice` — iterated SOR with a fixed, *trained* iteration count
  ("Iterate using SOR_wopt until accuracy p_i" — the until resolves to a
  count on training data, section 4.1).
* :class:`RecurseChoice` — iterate RECURSE_j, each application wrapping a
  coarse-grid call to the tuned MULTIGRID-V_j one level down.
* :class:`EstimateChoice` — full-multigrid slots only: run ESTIMATE_j (a
  recursive FULL-MULTIGRID_j call on the restricted problem) and then
  iterate one of the two V-type solvers until p_i.

All choices are frozen, hashable, and round-trip through plain dicts for
the PetaBricks-style configuration files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "Choice",
    "DirectChoice",
    "EstimateChoice",
    "RecurseChoice",
    "SORChoice",
    "choice_from_dict",
    "choice_to_dict",
]


@dataclass(frozen=True)
class DirectChoice:
    kind: str = "direct"

    def describe(self) -> str:
        return "direct"


@dataclass(frozen=True)
class SORChoice:
    """Iterated red-black SOR with the size-optimal weight.

    ``iterations=0`` is legal only inside an :class:`EstimateChoice` (the
    estimate alone already met the target); V-plan slots require >= 1.
    """

    iterations: int
    kind: str = "sor"

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("SORChoice iterations must be >= 0")

    def describe(self) -> str:
        return f"sor(x{self.iterations})"


@dataclass(frozen=True)
class RecurseChoice:
    """Iterated RECURSE_j: sub_accuracy is the index j into the plan's
    accuracy ladder used for the coarse-grid call."""

    sub_accuracy: int
    iterations: int
    kind: str = "recurse"

    def __post_init__(self) -> None:
        if self.sub_accuracy < 0:
            raise ValueError("sub_accuracy must be an index >= 0")
        if self.iterations < 0:
            raise ValueError("RecurseChoice iterations must be >= 0")

    def describe(self) -> str:
        return f"recurse(j={self.sub_accuracy}, x{self.iterations})"


@dataclass(frozen=True)
class EstimateChoice:
    """FULL-MULTIGRID_i body: ESTIMATE_j then iterate a V-type solver."""

    estimate_accuracy: int
    solver: Union[SORChoice, RecurseChoice]
    kind: str = "estimate"

    def __post_init__(self) -> None:
        if self.estimate_accuracy < 0:
            raise ValueError("estimate_accuracy must be an index >= 0")
        if not isinstance(self.solver, (SORChoice, RecurseChoice)):
            raise TypeError("solver must be SORChoice or RecurseChoice")

    def describe(self) -> str:
        return f"estimate(j={self.estimate_accuracy}) -> {self.solver.describe()}"


Choice = Union[DirectChoice, SORChoice, RecurseChoice, EstimateChoice]


def choice_to_dict(choice: Choice) -> dict:
    """Plain-dict form for configuration files."""
    if isinstance(choice, DirectChoice):
        return {"kind": "direct"}
    if isinstance(choice, SORChoice):
        return {"kind": "sor", "iterations": choice.iterations}
    if isinstance(choice, RecurseChoice):
        return {
            "kind": "recurse",
            "sub_accuracy": choice.sub_accuracy,
            "iterations": choice.iterations,
        }
    if isinstance(choice, EstimateChoice):
        return {
            "kind": "estimate",
            "estimate_accuracy": choice.estimate_accuracy,
            "solver": choice_to_dict(choice.solver),
        }
    raise TypeError(f"not a choice: {choice!r}")


def choice_from_dict(data: dict) -> Choice:
    """Inverse of :func:`choice_to_dict` (validates the payload)."""
    kind = data.get("kind")
    if kind == "direct":
        return DirectChoice()
    if kind == "sor":
        return SORChoice(iterations=int(data["iterations"]))
    if kind == "recurse":
        return RecurseChoice(
            sub_accuracy=int(data["sub_accuracy"]),
            iterations=int(data["iterations"]),
        )
    if kind == "estimate":
        solver = choice_from_dict(data["solver"])
        if isinstance(solver, (SORChoice, RecurseChoice)):
            return EstimateChoice(
                estimate_accuracy=int(data["estimate_accuracy"]), solver=solver
            )
        raise ValueError("estimate solver must be sor or recurse")
    raise ValueError(f"unknown choice kind {kind!r}")
