"""Execution of tuned plans.

Executes the open-loop algorithm a plan describes: trained iteration
counts, no runtime accuracy checks — exactly the compiled artifact the
PetaBricks autotuner produces.  Records op meters (for pricing) and traces
(for cycle rendering) along the way.

An executor is bound to one operator spec (default: constant-coefficient
Poisson, whose delegating kernels keep the legacy path byte-identical);
per-level operator instances come from the shared operator cache and
coarse levels rediscretize.
"""

from __future__ import annotations

import os
from collections import deque
from threading import get_ident

import numpy as np

from repro.kernels import LevelKernels, get_backend
from repro.linalg.direct import DirectSolver
from repro.machines.meter import NULL_METER, OpMeter, backend_op, dim_op
from repro.obs.profile import SolveProfiler
from repro.obs.trace import NOOP_TRACER, NoopTracer, Span, Tracer
from repro.operators.base import StencilOperator
from repro.operators.spec import OperatorSpec, parse_operator, shared_operator
from repro.relax.weights import OMEGA_RECURSE
from repro.tuner.choices import (
    DirectChoice,
    EstimateChoice,
    RecurseChoice,
    SORChoice,
)
from repro.tuner.plan import TunedFullMGPlan, TunedVPlan
from repro.tuner.trace import NULL_TRACE, Trace
from repro.util.validation import level_of_size, size_of_level

__all__ = ["OP_SPAN_MIN_POINTS", "PlanExecutor"]

#: Default floor (in grid points) below which per-op spans are not
#: recorded.  A relax sweep on a sub-1k-point grid runs in single-digit
#: microseconds — the two clock reads needed to time it would rival the
#: op itself, so the "measurement" would mostly measure the observer
#: while adding real overhead.  Coarse levels still appear in the trace
#: through their ``mg.level`` span (which times the whole level in
#: aggregate); per-op detail starts where it is meaningful.  In 2-D
#: this keeps op spans for levels >= 5 (33x33); pass
#: ``op_span_min_points=0`` to record every op regardless.
OP_SPAN_MIN_POINTS = 1024


def _plan_backend(plan, level: int) -> str:
    """The kernel backend a plan (or partial table view) wants at ``level``."""
    get = getattr(plan, "backend_at", None)
    return get(level) if get is not None else "numpy"


#: C-level appender that retains nothing (``maxlen=0`` drops every
#: element) — the emit target for profiler-only shims, where only the
#: timestamps matter and span records would just be thrown away.
_DISCARD_APPEND = deque(maxlen=0).append


class _TimedKernels:
    """Per-call observation shim over :class:`LevelKernels`.

    Only constructed when a real tracer or profiler is attached, so the
    default (unobserved) executor calls bound kernels directly with
    zero indirection.  Each kernel call becomes one leaf span (level /
    backend labels) and one profiler row; numerics pass through
    untouched, so golden-hash identity holds with tracing enabled.

    Op spans are the hottest observation path in the repo — the obs
    overhead bench gates them at <= 5% of level-7 V-cycle wall-clock,
    and two bare clock reads per op already cost ~3% there — so each
    call pays the bare minimum: two clock reads and one deferred leaf
    record stored straight into the sink (the tuple shape is
    :meth:`~repro.obs.trace.Tracer.leaf`'s contract; the sink
    materializes Spans at read time).  The record is emitted inline —
    an extra call frame per op is measurable at this granularity.
    Attrs dicts are shared per op, and the parent is the executor's
    tracked ``mg.level`` span — no contextvar traffic, no Span or id
    allocation per call.
    """

    __slots__ = (
        "_kernels",
        "_level",
        "_backend",
        "_profiler",
        "_executor",
        "_now",
        "_emit",
        "_pid",
        "_tid",
        "_attrs",
        "_relax_attrs",
    )

    def __init__(
        self,
        kernels: LevelKernels,
        level: int,
        backend: str,
        tracer: Tracer | NoopTracer,
        profiler: SolveProfiler | None,
        executor: "PlanExecutor",
    ) -> None:
        self._kernels = kernels
        self._level = level
        self._backend = backend
        self._profiler = profiler
        self._executor = executor
        self._now = tracer.clock.now_fn
        # The emit is the sink's bound list.append — a C call, no
        # Python frame; the buffer is trimmed by the enclosing
        # mg.level span's finish.  Profiler-only shims discard the
        # records outright (only the timestamps matter).
        if executor.tracer.enabled:
            self._emit = tracer.sink.append_raw  # type: ignore[union-attr]
        else:
            self._emit = _DISCARD_APPEND
        # Captured at bind time: shims are constructed lazily inside
        # the process that solves (shard workers bind after fork).
        # The tid is refreshed at each traced solve root (shims are
        # cached across solves; the executor is single-threaded per
        # solve, so per-record get_ident() would buy nothing).
        self._pid = os.getpid()
        self._tid = get_ident()
        # One shared, never-mutated attrs dict per op (plus one per
        # distinct relax iteration count) — leaf records store it
        # as-is, so the hot path allocates no dict per call.
        self._attrs = {"level": level, "backend": backend}
        self._relax_attrs: dict[int, dict] = {}

    def sor_sweeps(self, x, b, omega, iterations):
        attrs = self._relax_attrs.get(iterations)
        if attrs is None:
            attrs = self._relax_attrs[iterations] = dict(
                self._attrs, iterations=iterations
            )
        start_s = self._now()
        try:
            return self._kernels.sor_sweeps(x, b, omega, iterations)
        finally:
            end_s = self._now()
            self._emit((
                "op.relax", attrs, start_s, end_s,
                self._executor._span_parent, self._pid, self._tid,
            ))
            if self._profiler is not None:
                self._profiler.record(
                    self._level, "relax", self._backend, end_s - start_s
                )

    def residual(self, x, b):
        start_s = self._now()
        try:
            return self._kernels.residual(x, b)
        finally:
            end_s = self._now()
            self._emit((
                "op.residual", self._attrs, start_s, end_s,
                self._executor._span_parent, self._pid, self._tid,
            ))
            if self._profiler is not None:
                self._profiler.record(
                    self._level, "residual", self._backend, end_s - start_s
                )

    def restrict(self, r):
        start_s = self._now()
        try:
            return self._kernels.restrict(r)
        finally:
            end_s = self._now()
            self._emit((
                "op.restrict", self._attrs, start_s, end_s,
                self._executor._span_parent, self._pid, self._tid,
            ))
            if self._profiler is not None:
                self._profiler.record(
                    self._level, "restrict", self._backend, end_s - start_s
                )

    def interpolate_correction(self, x, ec):
        start_s = self._now()
        try:
            return self._kernels.interpolate_correction(x, ec)
        finally:
            end_s = self._now()
            self._emit((
                "op.interpolate", self._attrs, start_s, end_s,
                self._executor._span_parent, self._pid, self._tid,
            ))
            if self._profiler is not None:
                self._profiler.record(
                    self._level, "interpolate", self._backend, end_s - start_s
                )

    def __getattr__(self, name):
        return getattr(self._kernels, name)


class PlanExecutor:
    """Executes tuned V / full-MG plans on concrete problems.

    One executor holds the direct-solver backend (shared factorization
    cache if enabled) and the operator spec, and can be reused across
    solves.
    """

    def __init__(
        self,
        direct: DirectSolver | None = None,
        operator: OperatorSpec | str | None = None,
        tracer: Tracer | NoopTracer | None = None,
        profiler: SolveProfiler | None = None,
        op_span_min_points: int | None = None,
    ) -> None:
        self.direct = direct or DirectSolver(backend="block", cache_factorization=True)
        self.operator = parse_operator(operator)
        #: grid dimensionality of the bound operator (picks op vocabulary)
        self.ndim = self.operator.ndim
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.profiler = profiler
        # Observation is decided once at construction: the unobserved
        # executor (the default) keeps the exact pre-observability hot
        # path — raw bound kernels, no span calls, no clock reads.
        self._observed = bool(self.tracer.enabled) or profiler is not None
        # Profiler-only observation still needs real timestamps, which
        # the no-op tracer's inert spans cannot supply — time through a
        # private tracer whose 1-slot ring discards the spans.
        if profiler is not None and not self.tracer.enabled:
            self._obs_tracer: Tracer | NoopTracer = Tracer(capacity=1)
        else:
            self._obs_tracer = self.tracer
        # The enclosing mg.level span during a traced solve.  The
        # executor owns its recursion, so implicit parenting runs
        # through this plain attribute — a contextvar set/reset per
        # level would allocate HAMT nodes and tokens on the hot path.
        # The external parent (server batch span) is read from the
        # context once per solve, at the root.  Consequence: one
        # executor must not run traced solves concurrently from
        # multiple threads (its caches already assume the same).
        self._span_parent: Span | None = None
        self._mg_attrs: dict[tuple[int, int, str], dict] = {}
        self._direct_attrs: dict[int, dict] = {}
        self._obs_now = self._obs_tracer.clock.now_fn
        # Resolve the points floor to a level floor once (ndim is fixed).
        floor = OP_SPAN_MIN_POINTS if op_span_min_points is None else op_span_min_points
        self.op_span_min_points = floor
        min_level = 1
        while size_of_level(min_level) ** self.ndim < floor:
            min_level += 1
        self._op_span_min_level = min_level
        # Per-level operators resolved once: _op sits on the plan
        # execution hot path (every recursion step), so repeated spec
        # normalization / shared-cache lookups would add up.
        self._ops: dict[int, StencilOperator] = {}
        self._kernels_cache: dict[tuple[int, str], LevelKernels | _TimedKernels] = {}

    def _op(self, level: int) -> StencilOperator:
        op = self._ops.get(level)
        if op is None:
            op = self._ops[level] = shared_operator(self.operator, size_of_level(level))
        return op

    def _kernels(self, level: int, backend: str) -> LevelKernels:
        """Bound kernels for (level, backend); falls back to NumPy.

        A plan may record a backend that cannot run on this host (tuned
        elsewhere, optional dependency missing).  Since every backend is
        byte-identical by contract, silently executing the reference
        kernels preserves the plan's numerics exactly — only wall-clock
        differs from what the tuner priced.
        """
        key = (level, backend)
        kernels = self._kernels_cache.get(key)
        if kernels is None:
            op = self._op(level)
            if backend != "numpy":
                try:
                    accel = get_backend(backend)
                except ValueError:
                    kernels = None
                else:
                    if accel.available() and accel.supports(op):
                        accel.warmup()
                        kernels = accel.bind(op)
                    else:
                        kernels = None
            else:
                kernels = None
            if kernels is None:
                kernels = get_backend("numpy").bind(op)
            if self._observed and level >= self._op_span_min_level:
                kernels = _TimedKernels(
                    kernels, level, backend, self._obs_tracer, self.profiler, self
                )
            self._kernels_cache[key] = kernels
        return kernels

    def _direct(self, op: StencilOperator, x: np.ndarray, b: np.ndarray, level: int) -> None:
        """Direct solve at ``level``, observed when tracing/profiling."""
        if not self._observed or level < self._op_span_min_level:
            op.direct_solve(x, b, solver=self.direct)
            return
        attrs = self._direct_attrs.get(level)
        if attrs is None:
            attrs = self._direct_attrs[level] = {"level": level, "backend": "direct"}
        start_s = self._obs_now()
        try:
            op.direct_solve(x, b, solver=self.direct)
        finally:
            duration = self._obs_tracer.leaf(
                "op.direct", attrs, start_s, self._span_parent
            )
            if self.profiler is not None:
                self.profiler.record(level, "direct", "direct", duration)

    # -- MULTIGRID-V ------------------------------------------------------

    def run_v(
        self,
        plan: TunedVPlan,
        x: np.ndarray,
        b: np.ndarray,
        acc_index: int,
        meter: OpMeter = NULL_METER,
        trace: Trace = NULL_TRACE,
    ) -> np.ndarray:
        """Apply MULTIGRID-V_{acc_index} to (x, b) in place."""
        level = level_of_size(x.shape[0])
        if level > plan.max_level:
            raise ValueError(
                f"plan tuned up to level {plan.max_level}, input is level {level}"
            )
        if self._observed:
            self._refresh_tids()
        self._run_v(plan, x, b, level, acc_index, meter, trace)
        return x

    def _refresh_tids(self) -> None:
        """Restamp cached shims with the solving thread's id.

        Shims are cached across solves, so their captured tid would go
        stale if the executor is handed to another thread between
        solves (concurrent traced solves are already forbidden, see
        ``_span_parent``).  One attribute store per shim at the solve
        root keeps records honest without a per-record ``get_ident``.
        """
        tid = get_ident()
        for kernels in self._kernels_cache.values():
            if type(kernels) is _TimedKernels:
                kernels._tid = tid

    def _level_span(self, level: int, acc_index: int, kind: str) -> Span:
        """Open an ``mg.level`` span under the tracked parent (hot path).

        The parent is the enclosing mg.level span if any, else whatever
        span is current in the context (the server's batch span) — read
        once here, at each level entry, not per op.  Attrs dicts are
        shared per (level, acc, kind); on error the span gets a private
        copy before the ``error`` label (see the callers).
        """
        key = (level, acc_index, kind)
        attrs = self._mg_attrs.get(key)
        if attrs is None:
            attrs = self._mg_attrs[key] = {
                "level": level, "acc": acc_index, "ndim": self.ndim, "kind": kind
            }
        parent = self._span_parent
        if parent is None:
            parent = self.tracer.current()
        span = self.tracer.begin("mg.level", attrs, parent)
        self._span_parent = span
        return span

    def _run_v(
        self,
        plan: TunedVPlan,
        x: np.ndarray,
        b: np.ndarray,
        level: int,
        acc_index: int,
        meter: OpMeter,
        trace: Trace,
    ) -> None:
        if self._observed and self.tracer.enabled:
            prev = self._span_parent
            span = self._level_span(level, acc_index, "v")
            try:
                self._run_v_choice(plan, x, b, level, acc_index, meter, trace)
            except BaseException as exc:
                span.attrs = dict(span.attrs)  # never poison the shared dict
                span.attrs.setdefault("error", type(exc).__name__)
                raise
            finally:
                self._span_parent = prev
                self.tracer.finish(span)
        else:
            self._run_v_choice(plan, x, b, level, acc_index, meter, trace)

    def _run_v_choice(
        self,
        plan: TunedVPlan,
        x: np.ndarray,
        b: np.ndarray,
        level: int,
        acc_index: int,
        meter: OpMeter,
        trace: Trace,
    ) -> None:
        choice = plan.choice(level, acc_index)
        n = x.shape[0]
        op = self._op(level)
        trace.emit("enter", level, acc_index)
        if isinstance(choice, DirectChoice):
            self._direct(op, x, b, level)
            meter.charge(dim_op("direct", self.ndim), n)
            trace.emit("direct", level)
        elif isinstance(choice, SORChoice):
            backend = _plan_backend(plan, level)
            self._kernels(level, backend).sor_sweeps(
                x, b, op.omega_opt(), choice.iterations
            )
            meter.charge(
                backend_op(dim_op("relax", self.ndim), backend), n, choice.iterations
            )
            trace.emit("sor", level, choice.iterations)
        elif isinstance(choice, RecurseChoice):
            for _ in range(choice.iterations):
                self._recurse_once(plan, x, b, level, choice.sub_accuracy, meter, trace)
        else:  # pragma: no cover - plan validation forbids this
            raise TypeError(f"invalid V choice {choice!r}")
        trace.emit("exit", level)

    def _recurse_once(
        self,
        plan: TunedVPlan,
        x: np.ndarray,
        b: np.ndarray,
        level: int,
        sub_accuracy: int,
        meter: OpMeter,
        trace: Trace,
    ) -> None:
        """One RECURSE application: relax, coarse correction via the tuned
        sub-plan, relax (paper section 2.3, RECURSE_i)."""
        n = x.shape[0]
        nd = self.ndim
        backend = _plan_backend(plan, level)
        kernels = self._kernels(level, backend)
        relax_op = backend_op(dim_op("relax", nd), backend)
        kernels.sor_sweeps(x, b, OMEGA_RECURSE, 1)
        meter.charge(relax_op, n)
        trace.emit("relax", level)
        r = kernels.residual(x, b)
        meter.charge(backend_op(dim_op("residual", nd), backend), n)
        rc = kernels.restrict(r)
        meter.charge(backend_op(dim_op("restrict", nd), backend), n)
        trace.emit("descend", level)
        ec = np.zeros_like(rc)
        self._run_v(plan, ec, rc, level - 1, sub_accuracy, meter, trace)
        kernels.interpolate_correction(x, ec)
        meter.charge(backend_op(dim_op("interpolate", nd), backend), n)
        trace.emit("ascend", level)
        kernels.sor_sweeps(x, b, OMEGA_RECURSE, 1)
        meter.charge(relax_op, n)
        trace.emit("relax", level)

    # -- FULL-MULTIGRID ---------------------------------------------------

    def run_full_mg(
        self,
        plan: TunedFullMGPlan,
        x: np.ndarray,
        b: np.ndarray,
        acc_index: int,
        meter: OpMeter = NULL_METER,
        trace: Trace = NULL_TRACE,
    ) -> np.ndarray:
        """Apply FULL-MULTIGRID_{acc_index} to (x, b) in place."""
        level = level_of_size(x.shape[0])
        if level > plan.max_level:
            raise ValueError(
                f"plan tuned up to level {plan.max_level}, input is level {level}"
            )
        if self._observed:
            self._refresh_tids()
        self._run_full(plan, x, b, level, acc_index, meter, trace)
        return x

    def _run_full(
        self,
        plan: TunedFullMGPlan,
        x: np.ndarray,
        b: np.ndarray,
        level: int,
        acc_index: int,
        meter: OpMeter,
        trace: Trace,
    ) -> None:
        if self._observed and self.tracer.enabled:
            prev = self._span_parent
            span = self._level_span(level, acc_index, "full")
            try:
                self._run_full_choice(plan, x, b, level, acc_index, meter, trace)
            except BaseException as exc:
                span.attrs = dict(span.attrs)  # never poison the shared dict
                span.attrs.setdefault("error", type(exc).__name__)
                raise
            finally:
                self._span_parent = prev
                self.tracer.finish(span)
        else:
            self._run_full_choice(plan, x, b, level, acc_index, meter, trace)

    def _run_full_choice(
        self,
        plan: TunedFullMGPlan,
        x: np.ndarray,
        b: np.ndarray,
        level: int,
        acc_index: int,
        meter: OpMeter,
        trace: Trace,
    ) -> None:
        choice = plan.choice(level, acc_index)
        n = x.shape[0]
        nd = self.ndim
        op = self._op(level)
        trace.emit("enter", level, acc_index)
        if isinstance(choice, DirectChoice):
            self._direct(op, x, b, level)
            meter.charge(dim_op("direct", nd), n)
            trace.emit("direct", level)
        elif isinstance(choice, EstimateChoice):
            # ESTIMATE_j: correction-form recursive full-MG call.
            trace.emit("estimate", level, choice.estimate_accuracy)
            backend = _plan_backend(plan, level)
            kernels = self._kernels(level, backend)
            r = kernels.residual(x, b)
            meter.charge(backend_op(dim_op("residual", nd), backend), n)
            rc = kernels.restrict(r)
            meter.charge(backend_op(dim_op("restrict", nd), backend), n)
            trace.emit("descend", level)
            ec = np.zeros_like(rc)
            self._run_full(plan, ec, rc, level - 1, choice.estimate_accuracy, meter, trace)
            kernels.interpolate_correction(x, ec)
            meter.charge(backend_op(dim_op("interpolate", nd), backend), n)
            trace.emit("ascend", level)
            # Solve phase: iterate the chosen V-type method.
            solver = choice.solver
            if isinstance(solver, SORChoice):
                kernels.sor_sweeps(x, b, op.omega_opt(), solver.iterations)
                meter.charge(
                    backend_op(dim_op("relax", nd), backend), n, solver.iterations
                )
                trace.emit("sor", level, solver.iterations)
            else:
                for _ in range(solver.iterations):
                    self._recurse_once(
                        plan.vplan, x, b, level, solver.sub_accuracy, meter, trace
                    )
        else:  # pragma: no cover - plan validation forbids this
            raise TypeError(f"invalid full-MG choice {choice!r}")
        trace.emit("exit", level)
