"""Execution of tuned plans.

Executes the open-loop algorithm a plan describes: trained iteration
counts, no runtime accuracy checks — exactly the compiled artifact the
PetaBricks autotuner produces.  Records op meters (for pricing) and traces
(for cycle rendering) along the way.

An executor is bound to one operator spec (default: constant-coefficient
Poisson, whose delegating kernels keep the legacy path byte-identical);
per-level operator instances come from the shared operator cache and
coarse levels rediscretize.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import LevelKernels, get_backend
from repro.linalg.direct import DirectSolver
from repro.machines.meter import NULL_METER, OpMeter, backend_op, dim_op
from repro.operators.base import StencilOperator
from repro.operators.spec import OperatorSpec, parse_operator, shared_operator
from repro.relax.weights import OMEGA_RECURSE
from repro.tuner.choices import (
    DirectChoice,
    EstimateChoice,
    RecurseChoice,
    SORChoice,
)
from repro.tuner.plan import TunedFullMGPlan, TunedVPlan
from repro.tuner.trace import NULL_TRACE, Trace
from repro.util.validation import level_of_size, size_of_level

__all__ = ["PlanExecutor"]


def _plan_backend(plan, level: int) -> str:
    """The kernel backend a plan (or partial table view) wants at ``level``."""
    get = getattr(plan, "backend_at", None)
    return get(level) if get is not None else "numpy"


class PlanExecutor:
    """Executes tuned V / full-MG plans on concrete problems.

    One executor holds the direct-solver backend (shared factorization
    cache if enabled) and the operator spec, and can be reused across
    solves.
    """

    def __init__(
        self,
        direct: DirectSolver | None = None,
        operator: OperatorSpec | str | None = None,
    ) -> None:
        self.direct = direct or DirectSolver(backend="block", cache_factorization=True)
        self.operator = parse_operator(operator)
        #: grid dimensionality of the bound operator (picks op vocabulary)
        self.ndim = self.operator.ndim
        # Per-level operators resolved once: _op sits on the plan
        # execution hot path (every recursion step), so repeated spec
        # normalization / shared-cache lookups would add up.
        self._ops: dict[int, StencilOperator] = {}
        self._kernels_cache: dict[tuple[int, str], LevelKernels] = {}

    def _op(self, level: int) -> StencilOperator:
        op = self._ops.get(level)
        if op is None:
            op = self._ops[level] = shared_operator(self.operator, size_of_level(level))
        return op

    def _kernels(self, level: int, backend: str) -> LevelKernels:
        """Bound kernels for (level, backend); falls back to NumPy.

        A plan may record a backend that cannot run on this host (tuned
        elsewhere, optional dependency missing).  Since every backend is
        byte-identical by contract, silently executing the reference
        kernels preserves the plan's numerics exactly — only wall-clock
        differs from what the tuner priced.
        """
        key = (level, backend)
        kernels = self._kernels_cache.get(key)
        if kernels is None:
            op = self._op(level)
            if backend != "numpy":
                try:
                    accel = get_backend(backend)
                except ValueError:
                    kernels = None
                else:
                    if accel.available() and accel.supports(op):
                        accel.warmup()
                        kernels = accel.bind(op)
                    else:
                        kernels = None
            else:
                kernels = None
            if kernels is None:
                kernels = get_backend("numpy").bind(op)
            self._kernels_cache[key] = kernels
        return kernels

    # -- MULTIGRID-V ------------------------------------------------------

    def run_v(
        self,
        plan: TunedVPlan,
        x: np.ndarray,
        b: np.ndarray,
        acc_index: int,
        meter: OpMeter = NULL_METER,
        trace: Trace = NULL_TRACE,
    ) -> np.ndarray:
        """Apply MULTIGRID-V_{acc_index} to (x, b) in place."""
        level = level_of_size(x.shape[0])
        if level > plan.max_level:
            raise ValueError(
                f"plan tuned up to level {plan.max_level}, input is level {level}"
            )
        self._run_v(plan, x, b, level, acc_index, meter, trace)
        return x

    def _run_v(
        self,
        plan: TunedVPlan,
        x: np.ndarray,
        b: np.ndarray,
        level: int,
        acc_index: int,
        meter: OpMeter,
        trace: Trace,
    ) -> None:
        choice = plan.choice(level, acc_index)
        n = x.shape[0]
        op = self._op(level)
        trace.emit("enter", level, acc_index)
        if isinstance(choice, DirectChoice):
            op.direct_solve(x, b, solver=self.direct)
            meter.charge(dim_op("direct", self.ndim), n)
            trace.emit("direct", level)
        elif isinstance(choice, SORChoice):
            backend = _plan_backend(plan, level)
            self._kernels(level, backend).sor_sweeps(
                x, b, op.omega_opt(), choice.iterations
            )
            meter.charge(
                backend_op(dim_op("relax", self.ndim), backend), n, choice.iterations
            )
            trace.emit("sor", level, choice.iterations)
        elif isinstance(choice, RecurseChoice):
            for _ in range(choice.iterations):
                self._recurse_once(plan, x, b, level, choice.sub_accuracy, meter, trace)
        else:  # pragma: no cover - plan validation forbids this
            raise TypeError(f"invalid V choice {choice!r}")
        trace.emit("exit", level)

    def _recurse_once(
        self,
        plan: TunedVPlan,
        x: np.ndarray,
        b: np.ndarray,
        level: int,
        sub_accuracy: int,
        meter: OpMeter,
        trace: Trace,
    ) -> None:
        """One RECURSE application: relax, coarse correction via the tuned
        sub-plan, relax (paper section 2.3, RECURSE_i)."""
        n = x.shape[0]
        nd = self.ndim
        backend = _plan_backend(plan, level)
        kernels = self._kernels(level, backend)
        relax_op = backend_op(dim_op("relax", nd), backend)
        kernels.sor_sweeps(x, b, OMEGA_RECURSE, 1)
        meter.charge(relax_op, n)
        trace.emit("relax", level)
        r = kernels.residual(x, b)
        meter.charge(backend_op(dim_op("residual", nd), backend), n)
        rc = kernels.restrict(r)
        meter.charge(backend_op(dim_op("restrict", nd), backend), n)
        trace.emit("descend", level)
        ec = np.zeros_like(rc)
        self._run_v(plan, ec, rc, level - 1, sub_accuracy, meter, trace)
        kernels.interpolate_correction(x, ec)
        meter.charge(backend_op(dim_op("interpolate", nd), backend), n)
        trace.emit("ascend", level)
        kernels.sor_sweeps(x, b, OMEGA_RECURSE, 1)
        meter.charge(relax_op, n)
        trace.emit("relax", level)

    # -- FULL-MULTIGRID ---------------------------------------------------

    def run_full_mg(
        self,
        plan: TunedFullMGPlan,
        x: np.ndarray,
        b: np.ndarray,
        acc_index: int,
        meter: OpMeter = NULL_METER,
        trace: Trace = NULL_TRACE,
    ) -> np.ndarray:
        """Apply FULL-MULTIGRID_{acc_index} to (x, b) in place."""
        level = level_of_size(x.shape[0])
        if level > plan.max_level:
            raise ValueError(
                f"plan tuned up to level {plan.max_level}, input is level {level}"
            )
        self._run_full(plan, x, b, level, acc_index, meter, trace)
        return x

    def _run_full(
        self,
        plan: TunedFullMGPlan,
        x: np.ndarray,
        b: np.ndarray,
        level: int,
        acc_index: int,
        meter: OpMeter,
        trace: Trace,
    ) -> None:
        choice = plan.choice(level, acc_index)
        n = x.shape[0]
        nd = self.ndim
        op = self._op(level)
        trace.emit("enter", level, acc_index)
        if isinstance(choice, DirectChoice):
            op.direct_solve(x, b, solver=self.direct)
            meter.charge(dim_op("direct", nd), n)
            trace.emit("direct", level)
        elif isinstance(choice, EstimateChoice):
            # ESTIMATE_j: correction-form recursive full-MG call.
            trace.emit("estimate", level, choice.estimate_accuracy)
            backend = _plan_backend(plan, level)
            kernels = self._kernels(level, backend)
            r = kernels.residual(x, b)
            meter.charge(backend_op(dim_op("residual", nd), backend), n)
            rc = kernels.restrict(r)
            meter.charge(backend_op(dim_op("restrict", nd), backend), n)
            trace.emit("descend", level)
            ec = np.zeros_like(rc)
            self._run_full(plan, ec, rc, level - 1, choice.estimate_accuracy, meter, trace)
            kernels.interpolate_correction(x, ec)
            meter.charge(backend_op(dim_op("interpolate", nd), backend), n)
            trace.emit("ascend", level)
            # Solve phase: iterate the chosen V-type method.
            solver = choice.solver
            if isinstance(solver, SORChoice):
                kernels.sor_sweeps(x, b, op.omega_opt(), solver.iterations)
                meter.charge(
                    backend_op(dim_op("relax", nd), backend), n, solver.iterations
                )
                trace.emit("sor", level, solver.iterations)
            else:
                for _ in range(solver.iterations):
                    self._recurse_once(
                        plan.vplan, x, b, level, solver.sub_accuracy, meter, trace
                    )
        else:  # pragma: no cover - plan validation forbids this
            raise TypeError(f"invalid full-MG choice {choice!r}")
        trace.emit("exit", level)
