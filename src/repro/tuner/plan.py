"""Tuned plans: the output of the autotuner.

A plan is the paper's "family of functions MULTIGRID-V_i" (and
FULL-MULTIGRID_i): for every level k and accuracy index i it stores the
choice the DP selected.  Plans are:

* executable (:mod:`repro.tuner.executor`),
* exactly priceable — execution is open-loop with trained iteration
  counts, so the multiset of primitive ops is known analytically
  (:meth:`TunedVPlan.unit_meter`), and
* serializable (:mod:`repro.tuner.config`), playing the role of the
  PetaBricks configuration file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.machines.meter import OpMeter, backend_op, dim_op
from repro.machines.profile import MachineProfile
from repro.tuner.choices import (
    Choice,
    DirectChoice,
    EstimateChoice,
    RecurseChoice,
    SORChoice,
)
from repro.util.validation import size_of_level

__all__ = ["TunedFullMGPlan", "TunedVPlan", "recurse_wrapper_meter"]

DEFAULT_ACCURACIES: tuple[float, ...] = (1e1, 1e3, 1e5, 1e7, 1e9)


def recurse_wrapper_meter(n: int, ndim: int = 2, backend: str = "numpy") -> OpMeter:
    """Ops of one RECURSE application at fine size ``n``, excluding the
    coarse-grid call: two SOR(1.15) sweeps, residual, restriction,
    interpolation+correction.  ``ndim`` picks the 2-D or 3-D op
    vocabulary; ``backend`` qualifies the ops with the kernel backend
    executing this level (the default leaves them bare)."""
    meter = OpMeter()
    meter.charge(backend_op(dim_op("relax", ndim), backend), n, 2)
    meter.charge(backend_op(dim_op("residual", ndim), backend), n)
    meter.charge(backend_op(dim_op("restrict", ndim), backend), n)
    meter.charge(backend_op(dim_op("interpolate", ndim), backend), n)
    return meter


def _check_table(
    table: Mapping[tuple[int, int], Choice],
    accuracies: tuple[float, ...],
    max_level: int,
    allow_estimate: bool,
) -> None:
    m = len(accuracies)
    if m < 1:
        raise ValueError("need at least one accuracy level")
    if any(a <= 1.0 for a in accuracies):
        raise ValueError("accuracy levels are reduction ratios and must be > 1")
    if list(accuracies) != sorted(accuracies):
        raise ValueError("accuracies must be sorted ascending")
    if max_level < 1:
        raise ValueError("max_level must be >= 1")
    for level in range(1, max_level + 1):
        for i in range(m):
            choice = table.get((level, i))
            if choice is None:
                raise ValueError(f"missing choice for (level={level}, acc={i})")
            if isinstance(choice, EstimateChoice) and not allow_estimate:
                raise ValueError("EstimateChoice is only valid in full-MG plans")
            if isinstance(choice, (SORChoice, RecurseChoice)) and choice.iterations < 1:
                raise ValueError(
                    f"plan slot (level={level}, acc={i}) needs >= 1 iteration"
                )
            if isinstance(choice, (RecurseChoice, EstimateChoice)) and level == 1:
                raise ValueError("level 1 (3x3) cannot recurse")
            sub = None
            if isinstance(choice, RecurseChoice):
                sub = choice.sub_accuracy
            elif isinstance(choice, EstimateChoice):
                sub = choice.estimate_accuracy
                if isinstance(choice.solver, RecurseChoice):
                    if not 0 <= choice.solver.sub_accuracy < m:
                        raise ValueError("estimate solver sub_accuracy out of range")
            if sub is not None and not 0 <= sub < m:
                raise ValueError(f"sub accuracy index {sub} out of range [0, {m})")


@dataclass
class TunedVPlan:
    """Tuned MULTIGRID-V_i family over levels 1..max_level.

    ``ndim`` is the grid dimensionality the plan was tuned for; it
    selects the op vocabulary (and therefore pricing) of
    :meth:`unit_meter` and the kernels the executor dispatches into.
    """

    accuracies: tuple[float, ...]
    max_level: int
    table: dict[tuple[int, int], Choice]
    metadata: dict = field(default_factory=dict)
    ndim: int = 2
    #: per-level kernel backend; only non-default levels are stored, so a
    #: plan with no accelerated levels compares (and serializes) exactly
    #: as before the backend dimension existed
    backends: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.accuracies = tuple(float(a) for a in self.accuracies)
        if self.ndim not in (2, 3):
            raise ValueError(f"ndim must be 2 or 3, got {self.ndim}")
        _check_table(self.table, self.accuracies, self.max_level, allow_estimate=False)
        self.backends = {
            int(level): str(name)
            for level, name in (self.backends or {}).items()
            if name != "numpy"
        }
        self._meters: dict[tuple[int, int], OpMeter] = {}

    # -- lookups ----------------------------------------------------------

    @property
    def num_accuracies(self) -> int:
        return len(self.accuracies)

    def accuracy_index(self, target: float) -> int:
        """Smallest ladder index whose accuracy is >= target."""
        for i, p in enumerate(self.accuracies):
            if p >= target - 1e-12:
                return i
        raise ValueError(
            f"target accuracy {target:g} above the ladder {self.accuracies}"
        )

    def choice(self, level: int, acc_index: int) -> Choice:
        return self.table[(level, acc_index)]

    def backend_at(self, level: int) -> str:
        """The kernel backend executing stencil ops at ``level``."""
        return self.backends.get(level, "numpy")

    # -- pricing ----------------------------------------------------------

    def unit_meter(self, level: int, acc_index: int) -> OpMeter:
        """Exact op multiset of one MULTIGRID-V_{acc_index} call at ``level``."""
        key = (level, acc_index)
        cached = self._meters.get(key)
        if cached is not None:
            return cached
        choice = self.table[key]
        n = size_of_level(level)
        backend = self.backend_at(level)
        meter = OpMeter()
        if isinstance(choice, DirectChoice):
            meter.charge(dim_op("direct", self.ndim), n)
        elif isinstance(choice, SORChoice):
            meter.charge(
                backend_op(dim_op("relax", self.ndim), backend), n, choice.iterations
            )
        elif isinstance(choice, RecurseChoice):
            wrapper = recurse_wrapper_meter(n, self.ndim, backend)
            wrapper.merge(self.unit_meter(level - 1, choice.sub_accuracy))
            meter.merge(wrapper, times=choice.iterations)
        else:  # pragma: no cover - table validated at construction
            raise TypeError(f"invalid V-plan choice {choice!r}")
        self._meters[key] = meter
        return meter

    def time_on(
        self, profile: MachineProfile, level: int, acc_index: int, threads: int | None = None
    ) -> float:
        """Simulated seconds of one call under ``profile``."""
        return profile.price(self.unit_meter(level, acc_index), threads)

    def invalidate_pricing_cache(self) -> None:
        self._meters.clear()


@dataclass
class TunedFullMGPlan:
    """Tuned FULL-MULTIGRID_i family; solve-phase recursion uses ``vplan``."""

    accuracies: tuple[float, ...]
    max_level: int
    table: dict[tuple[int, int], Choice]
    vplan: TunedVPlan
    metadata: dict = field(default_factory=dict)
    ndim: int = 2

    def __post_init__(self) -> None:
        self.accuracies = tuple(float(a) for a in self.accuracies)
        if self.ndim not in (2, 3):
            raise ValueError(f"ndim must be 2 or 3, got {self.ndim}")
        _check_table(self.table, self.accuracies, self.max_level, allow_estimate=True)
        if self.vplan.accuracies != self.accuracies:
            raise ValueError("full-MG plan and V plan must share the accuracy ladder")
        if self.vplan.max_level < self.max_level:
            raise ValueError("V plan must cover at least the full-MG plan's levels")
        if self.vplan.ndim != self.ndim:
            raise ValueError("full-MG plan and V plan must share ndim")
        self._meters: dict[tuple[int, int], OpMeter] = {}

    @property
    def num_accuracies(self) -> int:
        return len(self.accuracies)

    def accuracy_index(self, target: float) -> int:
        return self.vplan.accuracy_index(target)

    def choice(self, level: int, acc_index: int) -> Choice:
        return self.table[(level, acc_index)]

    @property
    def backends(self) -> dict[int, str]:
        """Per-level kernel backends (shared with the solve-phase V plan)."""
        return self.vplan.backends

    def backend_at(self, level: int) -> str:
        return self.vplan.backend_at(level)

    def unit_meter(self, level: int, acc_index: int) -> OpMeter:
        """Exact op multiset of one FULL-MULTIGRID_{acc_index} call."""
        key = (level, acc_index)
        cached = self._meters.get(key)
        if cached is not None:
            return cached
        choice = self.table[key]
        n = size_of_level(level)
        backend = self.backend_at(level)
        meter = OpMeter()
        if isinstance(choice, DirectChoice):
            meter.charge(dim_op("direct", self.ndim), n)
        elif isinstance(choice, EstimateChoice):
            # Estimation phase: residual, restrict, recursive full-MG call,
            # interpolate + correct.
            meter.charge(backend_op(dim_op("residual", self.ndim), backend), n)
            meter.charge(backend_op(dim_op("restrict", self.ndim), backend), n)
            meter.merge(self.unit_meter(level - 1, choice.estimate_accuracy))
            meter.charge(backend_op(dim_op("interpolate", self.ndim), backend), n)
            solver = choice.solver
            if isinstance(solver, SORChoice):
                meter.charge(
                    backend_op(dim_op("relax", self.ndim), backend),
                    n,
                    solver.iterations,
                )
            else:
                wrapper = recurse_wrapper_meter(n, self.ndim, backend)
                wrapper.merge(self.vplan.unit_meter(level - 1, solver.sub_accuracy))
                meter.merge(wrapper, times=solver.iterations)
        else:  # pragma: no cover - table validated at construction
            raise TypeError(f"invalid full-MG choice {choice!r}")
        self._meters[key] = meter
        return meter

    def time_on(
        self, profile: MachineProfile, level: int, acc_index: int, threads: int | None = None
    ) -> float:
        return profile.price(self.unit_meter(level, acc_index), threads)

    def invalidate_pricing_cache(self) -> None:
        self._meters.clear()
        self.vplan.invalidate_pricing_cache()
