"""Training data management for the tuner.

One :class:`TrainingData` instance owns the per-level training problems,
their reference solutions (memoized), and their accuracy judges.  The paper
(section 2.2): "we assume we have access to representative training data so
that the accuracy level of our algorithms during tuning closely reflects
their accuracy level during use."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import ReferenceSolutionCache
from repro.operators.spec import OperatorSpec, parse_operator
from repro.util.validation import size_of_level
from repro.workloads.distributions import training_set
from repro.workloads.problem import PoissonProblem

__all__ = ["LevelTraining", "TrainingData"]


@dataclass(frozen=True)
class LevelTraining:
    """Training instances and judges for one grid level."""

    level: int
    problems: Sequence[PoissonProblem]
    judges: Sequence[AccuracyJudge]

    def fresh_starts(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Fresh (x, b) pairs for a candidate evaluation run."""
        return [(p.initial_guess(), p.b) for p in self.problems]

    def accuracy_fns(self):
        return [j.accuracy_of for j in self.judges]


class TrainingData:
    """Lazy per-level training sets drawn from one distribution.

    Parameters
    ----------
    distribution:
        Name from :data:`repro.workloads.DISTRIBUTIONS`.
    instances:
        Training instances per level.  The paper uses representative data;
        a handful of instances keeps worst-case aggregation meaningful
        without exploding tuning time.
    seed:
        Experiment seed; every level derives its own stream.
    operator:
        The discrete operator tuned against (an
        :class:`~repro.operators.spec.OperatorSpec` or canonical string;
        default constant-coefficient Poisson).  Training problems carry
        it, so reference solutions and candidate evaluations all see the
        same operator.
    """

    def __init__(
        self,
        distribution: str = "unbiased",
        instances: int = 3,
        seed: int | None = 0,
        reference_cache: ReferenceSolutionCache | None = None,
        operator: OperatorSpec | str | None = None,
    ) -> None:
        if instances < 1:
            raise ValueError("instances must be >= 1")
        self.distribution = distribution
        self.instances = instances
        self.seed = seed
        self.operator = parse_operator(operator)
        self.references = reference_cache or ReferenceSolutionCache()
        self._levels: dict[int, LevelTraining] = {}

    @property
    def operator_name(self) -> str:
        """Canonical operator string (storage keyfield form)."""
        return self.operator.canonical()

    @property
    def ndim(self) -> int:
        """Grid dimensionality of the training operator (2 or 3)."""
        return self.operator.ndim

    def at_level(self, level: int) -> LevelTraining:
        """Training set for ``level`` (materialized on first use)."""
        cached = self._levels.get(level)
        if cached is not None:
            return cached
        n = size_of_level(level)
        problems = training_set(
            self.distribution, n, self.instances, self.seed, operator=self.operator
        )
        judges = [
            AccuracyJudge(p.initial_guess(), self.references.get(p)) for p in problems
        ]
        bundle = LevelTraining(level=level, problems=problems, judges=judges)
        self._levels[level] = bundle
        return bundle
