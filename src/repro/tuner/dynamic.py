"""Dynamic tuning: input-adaptive plan dispatch (paper section 6).

"Another direction we plan to explore is the use of dynamic tuning where an
algorithm has the ability to adapt during execution based on some features
of the intermediate state.  Such flexibility would allow the autotuned
algorithm to classify inputs and intermediate states into different
distribution classes and then switch between tuned versions of itself."

This module implements the input-classification half of that idea: a
:class:`DynamicSolver` holds one tuned plan per distribution class and a
classifier that routes each incoming problem to the plan trained for its
class.  The default classifier separates the paper's two families by the
standardized mean of the right-hand side (the biased family is the unbiased
one shifted by +2^31, so its mean is ~half its spread; an unbiased RHS has
mean ~0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.machines.meter import NULL_METER, OpMeter
from repro.tuner.executor import PlanExecutor
from repro.tuner.plan import TunedFullMGPlan, TunedVPlan
from repro.tuner.trace import NULL_TRACE, Trace
from repro.workloads.problem import PoissonProblem

__all__ = ["DynamicSolver", "classify_by_bias", "resolve_distribution"]

Plan = TunedVPlan | TunedFullMGPlan
Classifier = Callable[[PoissonProblem], str]


def classify_by_bias(problem: PoissonProblem, threshold: float = 0.12) -> str:
    """"unbiased" or "biased" from the standardized RHS mean.

    For b_ij ~ U[-S, S] the mean/spread ratio concentrates at 0; for the
    biased family (shifted by +S/2, so values span ~2S) it concentrates at
    0.25.  The default threshold of 0.12 sits in the gap between the two
    populations, so classification is essentially error-free at any grid
    size above 5x5.
    """
    b = problem.b
    spread = float(b.max() - b.min())
    if spread == 0.0:
        return "unbiased"
    standardized_mean = abs(float(b.mean())) / spread
    return "biased" if standardized_mean > threshold else "unbiased"


def resolve_distribution(problem: PoissonProblem, distribution: str | None) -> str:
    """The training-distribution label for a service request.

    ``None`` trusts the problem's label (raising when it is not a known
    distribution); ``"auto"`` classifies the right-hand side with
    :func:`classify_by_bias` instead — the escape hatch for unlabeled
    or externally built problems.  Shared by
    :func:`repro.core.solve_service` and the solve server.
    """
    from repro.workloads.distributions import DISTRIBUTIONS

    if distribution == "auto":
        return classify_by_bias(problem)
    dist = distribution if distribution is not None else problem.label
    if dist not in DISTRIBUTIONS:
        raise ValueError(
            f"cannot infer a training distribution from label {dist!r}; pass "
            f'distribution= (one of {sorted(DISTRIBUTIONS)}) or "auto" to classify'
        )
    return dist


@dataclass
class DynamicSolver:
    """Dispatches each problem to the tuned plan for its input class.

    Parameters
    ----------
    plans:
        Mapping from class label to tuned plan (V or full-MG).
    classifier:
        ``classifier(problem) -> label``; defaults to
        :func:`classify_by_bias`.
    fallback:
        Label to use when the classifier emits an unknown class (None means
        raise instead).
    """

    plans: Mapping[str, Plan]
    classifier: Classifier = classify_by_bias
    fallback: str | None = None
    executor: PlanExecutor = field(default_factory=PlanExecutor)

    def __post_init__(self) -> None:
        if not self.plans:
            raise ValueError("DynamicSolver needs at least one plan")
        ladders = {plan.accuracies for plan in self.plans.values()}
        if len(ladders) != 1:
            raise ValueError("all plans must share one accuracy ladder")
        if self.fallback is not None and self.fallback not in self.plans:
            raise ValueError(f"fallback {self.fallback!r} is not a known class")

    @property
    def classes(self) -> tuple[str, ...]:
        return tuple(self.plans)

    def plan_for(self, problem: PoissonProblem) -> tuple[str, Plan]:
        """Classify ``problem`` and return (label, plan)."""
        label = self.classifier(problem)
        plan = self.plans.get(label)
        if plan is None:
            if self.fallback is None:
                raise KeyError(
                    f"classifier produced unknown class {label!r}; "
                    f"known: {sorted(self.plans)}"
                )
            label, plan = self.fallback, self.plans[self.fallback]
        return label, plan

    def solve(
        self,
        problem: PoissonProblem,
        target_accuracy: float,
        meter: OpMeter = NULL_METER,
        trace: Trace = NULL_TRACE,
    ) -> tuple[np.ndarray, str]:
        """Solve with the class-matched plan; returns (solution, label)."""
        label, plan = self.plan_for(problem)
        if problem.level > plan.max_level:
            raise ValueError(
                f"plan for class {label!r} tuned to level {plan.max_level}; "
                f"problem is level {problem.level}"
            )
        acc_index = plan.accuracy_index(target_accuracy)
        x = problem.initial_guess()
        if isinstance(plan, TunedFullMGPlan):
            self.executor.run_full_mg(plan, x, problem.b, acc_index, meter, trace)
        else:
            self.executor.run_v(plan, x, problem.b, acc_index, meter, trace)
        return x, label
