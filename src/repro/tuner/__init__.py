"""The accuracy-aware dynamic-programming autotuner — the paper's core
contribution.

Public surface:

* :class:`VCycleTuner` — discrete DP over (level, accuracy) for the
  MULTIGRID-V_i family (sections 2.1-2.3).
* :class:`FullMGTuner` — the full-multigrid extension (section 2.4).
* :class:`ParetoTuner` — the uncapped optimal-set DP (section 2.2).
* :class:`TunedVPlan` / :class:`TunedFullMGPlan` — executable, priceable,
  serializable tuned algorithms.
* :class:`PlanExecutor` — runs plans, recording op meters and traces.
* :func:`tune_heuristic` — the fixed 10^x/10^9 strategies of Figure 7.
* :func:`save_plan` / :func:`load_plan` — PetaBricks-style config files.
"""

from repro.tuner.choices import (
    Choice,
    DirectChoice,
    EstimateChoice,
    RecurseChoice,
    SORChoice,
)
from repro.tuner.plan import DEFAULT_ACCURACIES, TunedFullMGPlan, TunedVPlan
from repro.tuner.executor import PlanExecutor
from repro.tuner.trace import NULL_TRACE, Trace, TraceEvent
from repro.tuner.training import LevelTraining, TrainingData
from repro.tuner.timing import CostModelTiming, TimingStrategy, WallclockTiming
from repro.tuner.dp import CandidateReport, VCycleTuner
from repro.tuner.dynamic import DynamicSolver, classify_by_bias
from repro.tuner.full_mg import FullMGTuner
from repro.tuner.heuristics import HeuristicStrategy, strategy_label, tune_heuristic
from repro.tuner.pareto import ParetoAlgorithm, ParetoPoint, ParetoTuner, pareto_front
from repro.tuner.config import load_plan, plan_from_dict, plan_to_dict, save_plan

__all__ = [
    "CandidateReport",
    "Choice",
    "CostModelTiming",
    "DEFAULT_ACCURACIES",
    "DirectChoice",
    "DynamicSolver",
    "EstimateChoice",
    "FullMGTuner",
    "HeuristicStrategy",
    "LevelTraining",
    "NULL_TRACE",
    "ParetoAlgorithm",
    "ParetoPoint",
    "ParetoTuner",
    "PlanExecutor",
    "RecurseChoice",
    "SORChoice",
    "TimingStrategy",
    "Trace",
    "TraceEvent",
    "TrainingData",
    "TunedFullMGPlan",
    "TunedVPlan",
    "VCycleTuner",
    "WallclockTiming",
    "classify_by_bias",
    "load_plan",
    "pareto_front",
    "plan_from_dict",
    "plan_to_dict",
    "save_plan",
    "strategy_label",
    "tune_heuristic",
]
