"""The fixed heuristic strategies of Figures 7 and 8.

"Strategy 10^9 refers to requiring an accuracy of 10^9 at each recursive
level ...  Strategies of the form 10^x/10^9 refer to requiring an accuracy
of 10^x at each recursive level below that of the input size, which
requires an accuracy of 10^9.  ...  All heuristic strategies call the
direct method for smaller input sizes whenever it is more efficient to meet
the accuracy requirement."

Each strategy is expressed as a *restricted* run of the same DP machinery:
the candidate set is cut down to {direct, RECURSE_x}, so iteration counts
are still trained on data and the direct shortcut still fires where it is
faster — but the per-level accuracy freedom the autotuner exploits is gone.
The gap between these strategies and the full DP is the paper's headline
result for the V-cycle tuner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tuner.choices import Choice, DirectChoice, RecurseChoice
from repro.tuner.dp import VCycleTuner
from repro.tuner.plan import TunedVPlan
from repro.tuner.timing import TimingStrategy
from repro.tuner.training import TrainingData

__all__ = ["HeuristicStrategy", "strategy_label", "tune_heuristic"]


@dataclass(frozen=True)
class HeuristicStrategy:
    """A 10^x/10^final fixed strategy over a given accuracy ladder."""

    sub_index: int
    final_index: int

    def label(self, accuracies: tuple[float, ...]) -> str:
        return strategy_label(accuracies[self.sub_index], accuracies[self.final_index])


def strategy_label(sub_accuracy: float, final_accuracy: float) -> str:
    def fmt(p: float) -> str:
        exp = round(float(f"{p:e}".split("e")[1]))
        return f"10^{exp}"

    if sub_accuracy == final_accuracy:
        return f"Strategy {fmt(final_accuracy)}"
    return f"Strategy {fmt(sub_accuracy)}/{fmt(final_accuracy)}"


def tune_heuristic(
    strategy: HeuristicStrategy,
    max_level: int,
    accuracies: tuple[float, ...],
    training: TrainingData,
    timing: TimingStrategy,
    max_recurse_iters: int = 128,
    force_direct_max_level: int | None = None,
) -> TunedVPlan:
    """Train the given fixed strategy and return it as an executable plan.

    ``force_direct_max_level`` pins the direct call at levels <= the given
    level (the paper's Strategy 10^9 hard-codes the base case at N = 65,
    i.e. level 6); None lets cost decide, as for the 10^x/10^9 strategies.
    """
    if not 0 <= strategy.sub_index < len(accuracies):
        raise ValueError("sub_index out of range")
    if not 0 <= strategy.final_index < len(accuracies):
        raise ValueError("final_index out of range")
    sub = strategy.sub_index

    def allowed(level: int, acc_index: int, choice: Choice) -> bool:
        if isinstance(choice, DirectChoice):
            return True
        if force_direct_max_level is not None and level <= force_direct_max_level:
            return False
        # Recursion is permitted only into the strategy's fixed sub-accuracy.
        return isinstance(choice, RecurseChoice) and choice.sub_accuracy == sub

    tuner = VCycleTuner(
        max_level=max_level,
        accuracies=accuracies,
        training=training,
        timing=timing,
        max_recurse_iters=max_recurse_iters,
        candidate_filter=allowed,
        keep_audit=False,
    )
    plan = tuner.tune()
    plan.metadata["heuristic"] = strategy.label(tuple(accuracies))
    plan.metadata["sub_index"] = strategy.sub_index
    plan.metadata["final_index"] = strategy.final_index
    return plan
