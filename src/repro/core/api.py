"""One-call wrappers: autotune a plan, solve a problem, compare baselines."""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import reference_solution
from repro.machines.meter import OpMeter
from repro.machines.presets import get_preset
from repro.machines.profile import MachineProfile
from repro.multigrid.solver import ReferenceFullMGSolver, ReferenceVSolver, SORSolver
from repro.tuner.dp import VCycleTuner
from repro.tuner.executor import PlanExecutor
from repro.tuner.full_mg import FullMGTuner
from repro.tuner.plan import DEFAULT_ACCURACIES, TunedFullMGPlan, TunedVPlan
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.util.validation import level_of_size
from repro.workloads.distributions import make_problem
from repro.workloads.problem import PoissonProblem

__all__ = [
    "autotune",
    "autotune_full_mg",
    "poisson_problem",
    "solve",
    "solve_reference",
]


def poisson_problem(
    distribution: str = "unbiased", n: int = 33, seed: int | None = 0
) -> PoissonProblem:
    """A deterministic problem instance from a named distribution."""
    return make_problem(distribution, n, seed)


def autotune(
    max_level: int = 6,
    machine: str | MachineProfile = "intel",
    distribution: str = "unbiased",
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES,
    instances: int = 3,
    seed: int | None = 0,
) -> TunedVPlan:
    """Tune the MULTIGRID-V_i family for a machine and input distribution."""
    profile = get_preset(machine) if isinstance(machine, str) else machine
    training = TrainingData(distribution=distribution, instances=instances, seed=seed)
    tuner = VCycleTuner(
        max_level=max_level,
        accuracies=accuracies,
        training=training,
        timing=CostModelTiming(profile),
    )
    return tuner.tune()


def autotune_full_mg(
    max_level: int = 6,
    machine: str | MachineProfile = "intel",
    distribution: str = "unbiased",
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES,
    instances: int = 3,
    seed: int | None = 0,
    vplan: TunedVPlan | None = None,
) -> TunedFullMGPlan:
    """Tune FULL-MULTIGRID_i (tuning the V family first if not supplied)."""
    profile = get_preset(machine) if isinstance(machine, str) else machine
    training = TrainingData(distribution=distribution, instances=instances, seed=seed)
    if vplan is None:
        vplan = VCycleTuner(
            max_level=max_level,
            accuracies=accuracies,
            training=training,
            timing=CostModelTiming(profile),
        ).tune()
    tuner = FullMGTuner(vplan=vplan, training=training, timing=CostModelTiming(profile))
    return tuner.tune(max_level)


def solve(
    plan: TunedVPlan | TunedFullMGPlan,
    problem: PoissonProblem,
    target_accuracy: float,
) -> tuple[np.ndarray, OpMeter]:
    """Solve ``problem`` to ``target_accuracy`` with a tuned plan.

    Returns the solution grid and the op meter of the run (price it with
    any :class:`MachineProfile` for a simulated time).
    """
    level = problem.level
    if level > plan.max_level:
        raise ValueError(
            f"plan tuned to level {plan.max_level}; problem is level {level}"
        )
    acc_index = plan.accuracy_index(target_accuracy)
    x = problem.initial_guess()
    meter = OpMeter()
    executor = PlanExecutor()
    if isinstance(plan, TunedFullMGPlan):
        executor.run_full_mg(plan, x, problem.b, acc_index, meter)
    else:
        executor.run_v(plan, x, problem.b, acc_index, meter)
    return x, meter


def solve_reference(
    problem: PoissonProblem,
    target_accuracy: float,
    method: Literal["v", "full-mg", "sor"] = "v",
) -> tuple[np.ndarray, OpMeter, int]:
    """Solve with one of the paper's reference algorithms.

    Returns (solution, op meter, iteration count).
    """
    x_opt = reference_solution(problem)
    x = problem.initial_guess()
    judge = AccuracyJudge(x, x_opt)
    meter = OpMeter()
    solver = {
        "v": ReferenceVSolver(),
        "full-mg": ReferenceFullMGSolver(),
        "sor": SORSolver(),
    }[method]
    iters = solver.solve(x, problem.b, judge.accuracy_of, target_accuracy, meter)
    return x, meter, iters
