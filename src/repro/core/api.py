"""One-call wrappers: autotune a plan, solve a problem, compare baselines.

Service-shaped callers should prefer :func:`autotune_cached` /
:func:`solve_service`: they route through the persistent plan registry
(:mod:`repro.store`), so the DP tuner runs at most once per
(machine fingerprint, tuning key) across processes and restarts.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Literal

import numpy as np

from repro.accuracy.judge import AccuracyJudge
from repro.accuracy.reference import reference_solution
from repro.machines.meter import OpMeter
from repro.machines.presets import get_preset
from repro.machines.profile import MachineProfile
from repro.multigrid.solver import ReferenceFullMGSolver, ReferenceVSolver, SORSolver
from repro.operators.spec import (
    OperatorSpec,
    default_operator_spec,
    parse_operator,
    shared_operator,
)
from repro.tuner.dp import VCycleTuner
from repro.tuner.executor import PlanExecutor
from repro.tuner.full_mg import FullMGTuner
from repro.tuner.plan import DEFAULT_ACCURACIES, TunedFullMGPlan, TunedVPlan
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.workloads.distributions import make_problem
from repro.workloads.problem import PoissonProblem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.frontdoor import FrontDoor
    from repro.serve.server import SolveServer
    from repro.store.registry import PlanRegistry, RegistryHit

__all__ = [
    "autotune",
    "autotune_cached",
    "autotune_full_mg",
    "close_default_registry",
    "default_registry",
    "open_server",
    "poisson_problem",
    "solve",
    "solve_reference",
    "solve_service",
]

#: Environment variable naming the default on-disk tuning store.  Unset,
#: the process default registry is in-memory (still amortizes tuning
#: across calls within the process).
STORE_ENV = "REPRO_MG_STORE"

_default_registries: dict[str, "PlanRegistry"] = {}


def _resolve_store_path(path: str) -> str:
    """Canonical cache key for a store path.

    Relative spellings of the same file (``store.sqlite`` vs
    ``./store.sqlite``) must share one registry — and therefore one
    SQLite connection — so the key is the absolute path.  ``:memory:``
    stays symbolic: it names a per-process private store, not a file.
    """
    return path if path == ":memory:" else os.path.abspath(path)


def default_registry() -> "PlanRegistry":
    """The process-wide plan registry.

    Backed by the SQLite file named in ``$REPRO_MG_STORE`` when set,
    otherwise an in-memory store shared by all callers in this process.
    The environment variable is re-read on every call but the registry
    is cached per resolved path, so repeated calls — e.g. one per
    served request — share a single SQLite connection instead of
    opening a fresh one each time.  Setting the variable mid-process
    takes effect on the next call.
    """
    path = _resolve_store_path(os.environ.get(STORE_ENV, ":memory:"))
    registry = _default_registries.get(path)
    if registry is None:
        from repro.store.registry import PlanRegistry

        registry = _default_registries[path] = PlanRegistry(path)
    return registry


def close_default_registry(path: str | None = None) -> int:
    """Close cached default registries (all of them, or one path).

    Teardown hook for services and tests: closes the underlying SQLite
    connections and drops them from the per-path cache, so the next
    :func:`default_registry` call reopens cleanly.  Returns how many
    registries were closed.
    """
    if path is None:
        doomed = list(_default_registries)
    else:
        doomed = [p for p in (_resolve_store_path(path),) if p in _default_registries]
    for key in doomed:
        _default_registries.pop(key).db.close()
    return len(doomed)


def _trial_executor(jobs: int | None):
    """Context-managed executor for a ``jobs=`` argument.

    Executors built here from an int are closed when the ``with`` block
    exits; an already-constructed :class:`~repro.parallel.TrialExecutor`
    passes through without being closed (the caller owns its lifecycle,
    e.g. a warm pool reused across tunes).
    """
    from contextlib import nullcontext

    from repro.parallel import TrialExecutor, resolve_executor

    if isinstance(jobs, TrialExecutor):
        return nullcontext(jobs)
    return resolve_executor(jobs)


def _resolve_registry(store: object) -> "PlanRegistry":
    from repro.store.registry import PlanRegistry
    from repro.store.trialdb import TrialDB

    if store is None:
        return default_registry()
    if isinstance(store, PlanRegistry):
        return store
    if isinstance(store, (TrialDB, str, Path)):
        return PlanRegistry(store)
    raise TypeError(f"store must be a PlanRegistry, TrialDB, or path; got {store!r}")


def _resolve_operator_ndim(
    operator: OperatorSpec | str | None, ndim: int | None
) -> OperatorSpec:
    """Resolve the (operator, ndim) pair every one-call wrapper accepts.

    ``operator=None`` picks the constant-coefficient Poisson default for
    ``ndim`` (2 unless specified); an explicit operator must agree with
    an explicit ``ndim``.
    """
    if operator is None:
        return default_operator_spec(2 if ndim is None else ndim)
    spec = parse_operator(operator)
    if ndim is not None and spec.ndim != ndim:
        raise ValueError(
            f"ndim={ndim} does not match operator {spec.canonical()!r} "
            f"(a {spec.ndim}-D family)"
        )
    return spec


def poisson_problem(
    distribution: str = "unbiased",
    n: int = 33,
    seed: int | None = 0,
    operator: OperatorSpec | str | None = None,
    ndim: int | None = None,
) -> PoissonProblem:
    """A deterministic problem instance from a named distribution.

    ``operator`` picks the discrete operator family (default: the
    constant-coefficient Poisson stencil; also ``"varcoeff"``,
    ``"anisotropic"``, ``"poisson3d"``, or any canonical spec string).
    ``ndim=3`` with no operator selects the 3-D Poisson default.
    """
    return make_problem(
        distribution, n, seed, operator=_resolve_operator_ndim(operator, ndim)
    )


def autotune(
    max_level: int = 6,
    machine: str | MachineProfile = "intel",
    distribution: str = "unbiased",
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES,
    instances: int = 3,
    seed: int | None = 0,
    jobs: int | None = None,
    operator: OperatorSpec | str | None = None,
    ndim: int | None = None,
    backend: str = "numpy",
    tuner: Literal["dp", "model"] = "dp",
) -> TunedVPlan:
    """Tune the MULTIGRID-V_i family for a machine, distribution and operator.

    ``jobs`` > 1 evaluates candidate trials on a process pool
    (:mod:`repro.parallel`); trial tasks are deterministically seeded,
    so the tuned plan is identical to a serial (``jobs=1``) tune.
    ``ndim=3`` selects the 3-D workload family (``operator=None`` then
    means the 3-D Poisson default).  ``backend`` makes accelerated
    kernel backends available to the tuner as a per-level choice
    (``"auto"`` picks the best backend this host can run); the plan
    records which levels use it.  ``tuner="model"`` runs the budgeted
    model-guided BO search (:mod:`repro.modeltuner`) instead of the
    exhaustive DP — same plan surface, a fraction of the trial budget.
    """
    profile = get_preset(machine) if isinstance(machine, str) else machine
    training = TrainingData(
        distribution=distribution, instances=instances, seed=seed,
        operator=_resolve_operator_ndim(operator, ndim),
    )
    with _trial_executor(jobs) as executor:
        if tuner == "model":
            from repro.modeltuner import BOSearch

            return BOSearch(
                max_level=max_level,
                accuracies=accuracies,
                training=training,
                profile=profile,
                backend=backend,
                trial_executor=executor,
            ).tune()
        if tuner != "dp":
            raise ValueError(f"unknown tuner {tuner!r}; use 'dp' or 'model'")
        return VCycleTuner(
            max_level=max_level,
            accuracies=accuracies,
            training=training,
            timing=CostModelTiming(profile),
            trial_executor=executor,
            backend=backend,
        ).tune()


def autotune_full_mg(
    max_level: int = 6,
    machine: str | MachineProfile = "intel",
    distribution: str = "unbiased",
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES,
    instances: int = 3,
    seed: int | None = 0,
    vplan: TunedVPlan | None = None,
    jobs: int | None = None,
    operator: OperatorSpec | str | None = None,
    ndim: int | None = None,
    backend: str = "numpy",
) -> TunedFullMGPlan:
    """Tune FULL-MULTIGRID_i (tuning the V family first if not supplied).

    A caller-supplied ``vplan`` must have been tuned for the same
    ``operator`` (the tuner validates and raises on mismatch); its
    per-level kernel backends carry over to the full-MG plan, so
    ``backend`` only matters when the V plan is tuned here.
    """
    profile = get_preset(machine) if isinstance(machine, str) else machine
    training = TrainingData(
        distribution=distribution, instances=instances, seed=seed,
        operator=_resolve_operator_ndim(operator, ndim),
    )
    with _trial_executor(jobs) as executor:
        if vplan is None:
            vplan = VCycleTuner(
                max_level=max_level,
                accuracies=accuracies,
                training=training,
                timing=CostModelTiming(profile),
                trial_executor=executor,
                backend=backend,
            ).tune()
        tuner = FullMGTuner(
            vplan=vplan,
            training=training,
            timing=CostModelTiming(profile),
            trial_executor=executor,
        )
        return tuner.tune(max_level)


def solve(
    plan: TunedVPlan | TunedFullMGPlan,
    problem: PoissonProblem,
    target_accuracy: float,
) -> tuple[np.ndarray, OpMeter]:
    """Solve ``problem`` to ``target_accuracy`` with a tuned plan.

    The plan executes against the problem's operator, and must have been
    tuned for it: trained iteration counts carry no accuracy promise on
    a different operator, so a mismatch raises instead of silently
    returning an inaccurate grid.  (Plans from before the operator layer
    carry no operator metadata and count as Poisson-tuned.)  Returns the
    solution grid and the op meter of the run (price it with any
    :class:`MachineProfile` for a simulated time).
    """
    level = problem.level
    if level > plan.max_level:
        raise ValueError(
            f"plan tuned to level {plan.max_level}; problem is level {level}"
        )
    plan_operator = plan.metadata.get("operator", "poisson")
    if plan_operator != problem.operator.canonical():
        raise ValueError(
            f"plan was tuned for operator {plan_operator!r}; problem uses "
            f"{problem.operator.canonical()!r}"
        )
    acc_index = plan.accuracy_index(target_accuracy)
    x = problem.initial_guess()
    meter = OpMeter()
    executor = PlanExecutor(operator=problem.operator)
    if isinstance(plan, TunedFullMGPlan):
        executor.run_full_mg(plan, x, problem.b, acc_index, meter)
    else:
        executor.run_v(plan, x, problem.b, acc_index, meter)
    return x, meter


def solve_reference(
    problem: PoissonProblem,
    target_accuracy: float,
    method: Literal["v", "full-mg", "sor"] = "v",
) -> tuple[np.ndarray, OpMeter, int]:
    """Solve with one of the paper's reference algorithms.

    Returns (solution, op meter, iteration count).
    """
    x_opt = reference_solution(problem)
    x = problem.initial_guess()
    judge = AccuracyJudge(x, x_opt)
    meter = OpMeter()
    op = shared_operator(problem.operator, problem.n)
    solver = {
        "v": ReferenceVSolver(operator=op),
        "full-mg": ReferenceFullMGSolver(operator=op),
        "sor": SORSolver(operator=op),
    }[method]
    iters = solver.solve(x, problem.b, judge.accuracy_of, target_accuracy, meter)
    return x, meter, iters


def autotune_cached(
    max_level: int = 6,
    machine: str | MachineProfile = "intel",
    distribution: str = "unbiased",
    accuracies: tuple[float, ...] = DEFAULT_ACCURACIES,
    instances: int = 3,
    seed: int | None = 0,
    kind: Literal["multigrid-v", "full-multigrid"] = "multigrid-v",
    store: object = None,
    allow_nearest: bool = True,
    jobs: int | None = None,
    operator: OperatorSpec | str | None = None,
    ndim: int | None = None,
    backend: str = "numpy",
    tuner: Literal["dp", "model"] = "dp",
) -> TunedVPlan | TunedFullMGPlan:
    """:func:`autotune` through the persistent plan registry.

    An exact registry hit returns the stored plan without running the
    tuner; otherwise the nearest known machine's plan serves (when
    ``allow_nearest``), and only a genuinely cold key pays for a tuning
    pass — across ``jobs`` worker processes when ``jobs`` > 1, with a
    plan identical to the serial tune.  ``tuner="model"`` makes that
    cold pass the budgeted model-guided search warm-started from the
    store's accumulated trials (:mod:`repro.modeltuner`) instead of the
    exhaustive DP.  ``operator`` is part of the tuning key, so each
    problem family gets its own registry entries.  ``store`` is a
    :class:`~repro.store.registry.PlanRegistry`,
    :class:`~repro.store.trialdb.TrialDB`, or database path; default is
    :func:`default_registry`.
    """
    from repro.store.registry import TuneKey

    profile = get_preset(machine) if isinstance(machine, str) else machine
    registry = _resolve_registry(store)
    key = TuneKey(
        kind=kind,
        distribution=distribution,
        max_level=max_level,
        accuracies=tuple(accuracies),
        seed=seed,
        instances=instances,
        operator=_resolve_operator_ndim(operator, ndim).canonical(),
        backend=backend,
    )
    return registry.get_or_tune(
        profile, key, allow_nearest=allow_nearest, jobs=jobs, tuner=tuner
    ).plan


def solve_service(
    problem: PoissonProblem,
    target_accuracy: float,
    machine: str | MachineProfile = "intel",
    distribution: str | None = None,
    instances: int = 3,
    seed: int | None = 0,
    kind: Literal["multigrid-v", "full-multigrid"] = "multigrid-v",
    store: object = None,
    jobs: int | None = None,
    backend: str = "numpy",
) -> tuple[np.ndarray, OpMeter, "RegistryHit"]:
    """Solve like a long-running service: plans come from the registry.

    The tuning key is derived from the problem (its level, its operator,
    and its distribution label unless ``distribution`` overrides it); repeated
    calls for the same workload class are registry hits that skip the
    tuner entirely.  ``distribution="auto"`` classifies the problem's
    right-hand side (:func:`repro.tuner.dynamic.classify_by_bias`)
    instead of trusting the label — the escape hatch for problems built
    outside the named distributions.  A cold key tunes across ``jobs``
    worker processes when ``jobs`` > 1 (identical plan, lower latency).
    Returns (solution, meter, registry hit) so callers can log where
    their plan came from.
    """
    from repro.store.registry import TuneKey
    from repro.tuner.dynamic import resolve_distribution

    profile = get_preset(machine) if isinstance(machine, str) else machine
    registry = _resolve_registry(store)
    dist = resolve_distribution(problem, distribution)
    key = TuneKey(
        kind=kind,
        distribution=dist,
        max_level=problem.level,
        seed=seed,
        instances=instances,
        operator=problem.operator.canonical(),
        backend=backend,
    )
    hit = registry.get_or_tune(profile, key, jobs=jobs)
    x, meter = solve(hit.plan, problem, target_accuracy)
    return x, meter, hit


def open_server(
    machine: str | MachineProfile = "intel",
    store: object = None,
    *,
    shards: int | None = None,
    **options: object,
) -> "SolveServer | FrontDoor":
    """Open a solve server (the facade) — in-process or sharded.

    Without ``shards`` this is a single-process
    :class:`~repro.serve.server.SolveServer`: worker threads start
    immediately and the object is a context manager (``with
    core.open_server() as server: ...`` drains and shuts down on exit).
    Keyword options pass through — ``workers``, ``queue_size``,
    ``batch_size``, ``tune_jobs``, ``scheduler``, the tuning
    configuration (``kind``, ``accuracies``, ``seed``, ``instances``),
    the SLO controls (``slo_p99_s``, ...), and the observability hooks
    (``tracer``/``profiler`` in-process, ``trace=True`` sharded — see
    :mod:`repro.obs`).

    With ``shards=N`` it is a :class:`~repro.serve.frontdoor.FrontDoor`
    over N shard-worker processes with the same ``submit``/``solve``/
    ``warm``/``stats`` surface; grid payloads then travel through
    shared memory instead of the in-process queue.  ``store`` must be a
    path (or None) in that case — worker processes open their own
    connections.
    """
    if shards is not None:
        from pathlib import Path

        from repro.serve.frontdoor import FrontDoor

        if isinstance(machine, MachineProfile):
            raise TypeError(
                "sharded serving takes a machine preset name (workers "
                "resolve it in their own processes), not a MachineProfile"
            )
        if store is not None and not isinstance(store, (str, Path)):
            raise TypeError(
                f"sharded serving takes a store *path* (workers open "
                f"their own connections), not {type(store).__name__}"
            )
        return FrontDoor(
            shards=shards,
            machine=machine,
            store_path=str(store) if store is not None else None,
            **options,  # type: ignore[arg-type]
        )
    from repro.serve.server import SolveServer

    return SolveServer(machine=machine, store=store, **options)  # type: ignore[arg-type]
