"""High-level convenience API over the tuner.

This is the entry point a downstream user reaches for first: build a
problem, autotune a plan for a machine, solve to a target accuracy.  The
full control surface lives in :mod:`repro.tuner`.
"""

from repro.core.api import (
    autotune,
    autotune_full_mg,
    poisson_problem,
    solve,
    solve_reference,
)

__all__ = [
    "autotune",
    "autotune_full_mg",
    "poisson_problem",
    "solve",
    "solve_reference",
]
