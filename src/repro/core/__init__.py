"""High-level convenience API over the tuner.

This is the entry point a downstream user reaches for first: build a
problem, autotune a plan for a machine, solve to a target accuracy.
``autotune_cached`` and ``solve_service`` do the same through the
persistent plan registry (:mod:`repro.store`), amortizing tuning cost
across calls, processes, and machines; ``open_server`` runs the whole
thing as a long-lived serving runtime (:mod:`repro.serve`).  The full
control surface lives in :mod:`repro.tuner`.
"""

from repro.core.api import (
    autotune,
    autotune_cached,
    autotune_full_mg,
    close_default_registry,
    default_registry,
    open_server,
    poisson_problem,
    solve,
    solve_reference,
    solve_service,
)

__all__ = [
    "autotune",
    "autotune_cached",
    "autotune_full_mg",
    "close_default_registry",
    "default_registry",
    "open_server",
    "poisson_problem",
    "solve",
    "solve_reference",
    "solve_service",
]
