"""The discrete 2D Poisson operator and residual computation.

Hot-path functions are fully vectorized (slice arithmetic only — no Python
loops over grid points) and support an ``out`` parameter so callers can avoid
allocation in inner loops.
"""

from __future__ import annotations

import numpy as np

from repro.grids.grid import mesh_width, prepare_out
from repro.util.validation import check_square_grid

__all__ = ["apply_poisson", "residual", "rhs_scale"]


def rhs_scale(n: int) -> float:
    """1/h**2 factor of the operator at grid size ``n``."""
    h = mesh_width(n)
    return 1.0 / (h * h)


def apply_poisson(u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Apply A = -laplacian_h to ``u``; result is zero on the boundary ring.

    (A u)_ij = (4 u_ij - u_N - u_S - u_W - u_E) / h**2 on interior points.
    """
    check_square_grid(u, "u")
    n = u.shape[0]
    inv_h2 = rhs_scale(n)
    out = prepare_out(out, u.shape, u.dtype, "u")
    c = u[1:-1, 1:-1]
    # 4u - (up + down + left + right), scaled by 1/h^2.
    acc = out[1:-1, 1:-1]
    np.multiply(c, 4.0, out=acc)
    acc -= u[:-2, 1:-1]
    acc -= u[2:, 1:-1]
    acc -= u[1:-1, :-2]
    acc -= u[1:-1, 2:]
    acc *= inv_h2
    return out


def residual(u: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Residual r = b - A u on the interior; zero on the boundary ring.

    The boundary ring of ``u`` carries the Dirichlet data, so the 5-point
    stencil evaluated adjacent to the boundary picks it up automatically.
    """
    check_square_grid(u, "u")
    if b.shape != u.shape:
        raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
    n = u.shape[0]
    inv_h2 = rhs_scale(n)
    out = prepare_out(out, u.shape, u.dtype, "u")
    c = u[1:-1, 1:-1]
    acc = out[1:-1, 1:-1]
    # acc = b - (4u - neighbors)/h^2, computed without temporaries beyond one.
    np.multiply(c, -4.0, out=acc)
    acc += u[:-2, 1:-1]
    acc += u[2:, 1:-1]
    acc += u[1:-1, :-2]
    acc += u[1:-1, 2:]
    acc *= inv_h2
    acc += b[1:-1, 1:-1]
    return out
