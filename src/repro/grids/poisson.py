"""The discrete Poisson operator and residual computation (2-D and 3-D).

Hot-path functions are fully vectorized (slice arithmetic only — no Python
loops over grid points) and support an ``out`` parameter so callers can avoid
allocation in inner loops.  The 2-D paths are the historical hand-tuned
kernels, untouched; 3-D inputs branch into the dimension-general
axis-weighted kernels (:func:`apply_axis_stencil` /
:func:`residual_axis_stencil`) with unit coefficients — the 7-point stencil
``(6 u - sum of neighbours) / h**2``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.grids.grid import mesh_width, prepare_out
from repro.util.validation import check_cube_grid, check_square_grid

__all__ = [
    "apply_axis_stencil",
    "apply_poisson",
    "residual",
    "residual_axis_stencil",
    "rhs_scale",
]


def rhs_scale(n: int) -> float:
    """1/h**2 factor of the operator at grid size ``n``."""
    h = mesh_width(n)
    return 1.0 / (h * h)


def _axis_slices(ndim: int, axis: int) -> tuple[tuple[slice, ...], tuple[slice, ...]]:
    """(lower, upper) neighbour index tuples along ``axis`` for the interior."""
    lo = tuple(slice(0, -2) if a == axis else slice(1, -1) for a in range(ndim))
    hi = tuple(slice(2, None) if a == axis else slice(1, -1) for a in range(ndim))
    return lo, hi


def apply_axis_stencil(
    u: np.ndarray,
    coeffs: Sequence[float],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply the per-axis constant-coefficient (2d+1)-point stencil.

    (A u)_p = [sum_a c_a (2 u_p - u_{p-e_a} - u_{p+e_a})] / h**2 on the
    interior; zero on the boundary shell.  ``coeffs`` has one entry per
    array axis; unit coefficients give -laplacian_h in any dimension.
    """
    check_cube_grid(u, "u")
    if len(coeffs) != u.ndim:
        raise ValueError(f"need {u.ndim} coefficients, got {len(coeffs)}")
    inv_h2 = rhs_scale(u.shape[0])
    out = prepare_out(out, u.shape, u.dtype, "u")
    inner = (slice(1, -1),) * u.ndim
    acc = out[inner]
    np.multiply(u[inner], 2.0 * float(sum(coeffs)), out=acc)
    for axis, c in enumerate(coeffs):
        lo, hi = _axis_slices(u.ndim, axis)
        acc -= c * u[lo]
        acc -= c * u[hi]
    acc *= inv_h2
    return out


def residual_axis_stencil(
    u: np.ndarray,
    b: np.ndarray,
    coeffs: Sequence[float],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """r = b - A u for the per-axis stencil of :func:`apply_axis_stencil`."""
    check_cube_grid(u, "u")
    if b.shape != u.shape:
        raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
    if len(coeffs) != u.ndim:
        raise ValueError(f"need {u.ndim} coefficients, got {len(coeffs)}")
    inv_h2 = rhs_scale(u.shape[0])
    out = prepare_out(out, u.shape, u.dtype, "u")
    inner = (slice(1, -1),) * u.ndim
    acc = out[inner]
    np.multiply(u[inner], -2.0 * float(sum(coeffs)), out=acc)
    for axis, c in enumerate(coeffs):
        lo, hi = _axis_slices(u.ndim, axis)
        acc += c * u[lo]
        acc += c * u[hi]
    acc *= inv_h2
    acc += b[inner]
    return out


_UNIT_3D = (1.0, 1.0, 1.0)


def apply_poisson(u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Apply A = -laplacian_h to ``u``; result is zero on the boundary ring.

    (A u)_ij = (4 u_ij - u_N - u_S - u_W - u_E) / h**2 on interior points
    in 2-D; the 7-point analogue with diagonal 6/h**2 in 3-D.
    """
    if u.ndim == 3:
        return apply_axis_stencil(u, _UNIT_3D, out)
    check_square_grid(u, "u")
    n = u.shape[0]
    inv_h2 = rhs_scale(n)
    out = prepare_out(out, u.shape, u.dtype, "u")
    c = u[1:-1, 1:-1]
    # 4u - (up + down + left + right), scaled by 1/h^2.
    acc = out[1:-1, 1:-1]
    np.multiply(c, 4.0, out=acc)
    acc -= u[:-2, 1:-1]
    acc -= u[2:, 1:-1]
    acc -= u[1:-1, :-2]
    acc -= u[1:-1, 2:]
    acc *= inv_h2
    return out


def residual(u: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Residual r = b - A u on the interior; zero on the boundary ring.

    The boundary shell of ``u`` carries the Dirichlet data, so the stencil
    evaluated adjacent to the boundary picks it up automatically.
    """
    if u.ndim == 3:
        return residual_axis_stencil(u, b, _UNIT_3D, out)
    check_square_grid(u, "u")
    if b.shape != u.shape:
        raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
    n = u.shape[0]
    inv_h2 = rhs_scale(n)
    out = prepare_out(out, u.shape, u.dtype, "u")
    c = u[1:-1, 1:-1]
    acc = out[1:-1, 1:-1]
    # acc = b - (4u - neighbors)/h^2, computed without temporaries beyond one.
    np.multiply(c, -4.0, out=acc)
    acc += u[:-2, 1:-1]
    acc += u[2:, 1:-1]
    acc += u[1:-1, :-2]
    acc += u[1:-1, 2:]
    acc *= inv_h2
    acc += b[1:-1, 1:-1]
    return out
