"""Inter-grid transfer operators: restriction and interpolation.

Vertex-centered hierarchy: a fine grid of size N_f = 2**k + 1 maps onto a
coarse grid of size N_c = 2**(k-1) + 1 with coincident points at even fine
indices.  Restriction is full weighting (the transpose of (bi/tri)linear
interpolation up to a scale factor of 2**ndim), interpolation is bilinear
in 2-D and trilinear in 3-D.  These are the standard pairing for the
5-point/7-point Poisson operators and what the paper's RECURSE steps 5 and
7 perform.  The public functions dispatch on the input's dimensionality;
2-D keeps the historical kernels byte-identical, while 3-D uses separable
per-axis passes (the tensor-product [1/4, 1/2, 1/4] weighting, i.e. the
27-point full-weighting stencil, and its trilinear adjoint).
"""

from __future__ import annotations

import numpy as np

from repro.grids.grid import coarsen_size, prepare_out
from repro.util.validation import check_cube_grid, check_square_grid, level_of_size

__all__ = [
    "interpolate_bilinear",
    "interpolate_correction",
    "restrict_full_weighting",
    "restrict_injection",
]


def _restrict_axis_fw(a: np.ndarray, axis: int) -> np.ndarray:
    """One separable full-weighting pass: coarsen ``axis`` by the
    [1/4, 1/2, 1/4] rule at even indices, zeroing that axis's boundary."""
    n = a.shape[axis]
    nc = (n - 1) // 2 + 1
    shape = list(a.shape)
    shape[axis] = nc
    out = np.zeros(tuple(shape), dtype=a.dtype)

    def sl(arr_ndim: int, which: slice) -> tuple[slice, ...]:
        return tuple(which if ax == axis else slice(None) for ax in range(arr_ndim))

    acc = out[sl(a.ndim, slice(1, -1))]
    np.multiply(a[sl(a.ndim, slice(2, -2, 2))], 0.5, out=acc)
    acc += 0.25 * a[sl(a.ndim, slice(1, -3, 2))]
    acc += 0.25 * a[sl(a.ndim, slice(3, -1, 2))]
    return out


def _restrict_full_weighting_3d(fine: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    nc = coarsen_size(fine.shape[0])
    t = fine
    for axis in range(3):
        t = _restrict_axis_fw(t, axis)
    # Each separable pass zeroes its own axis's boundary, so t already
    # has a clean zero shell — hand it back directly when no out buffer
    # was supplied (this sits on the cycle hot path).
    if out is None:
        return t
    if out.shape != (nc,) * 3:
        raise ValueError(f"out shape {out.shape} != coarse shape {(nc,) * 3}")
    np.copyto(out, t)
    return out


def _refine_axis_linear(a: np.ndarray, axis: int) -> np.ndarray:
    """One separable linear-interpolation pass: refine ``axis`` to 2n-1
    points (coincident copies, midpoints average the two endpoints)."""
    n = a.shape[axis]
    shape = list(a.shape)
    shape[axis] = 2 * n - 1
    out = np.empty(tuple(shape), dtype=a.dtype)

    def sl(which: slice) -> tuple[slice, ...]:
        return tuple(which if ax == axis else slice(None) for ax in range(a.ndim))

    out[sl(slice(0, None, 2))] = a
    odd = out[sl(slice(1, None, 2))]
    np.add(a[sl(slice(0, -1))], a[sl(slice(1, None))], out=odd)
    odd *= 0.5
    return out


def _interpolate_trilinear(coarse: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    k = check_cube_grid(coarse, "coarse")
    nf = (1 << (k + 1)) + 1
    t = coarse
    for axis in range(3):
        t = _refine_axis_linear(t, axis)
    if out is None:
        return t
    if out.shape != (nf,) * 3:
        raise ValueError(f"out shape {out.shape} != {(nf,) * 3}")
    np.copyto(out, t)
    return out


def restrict_full_weighting(fine: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Full-weighting restriction of ``fine`` onto the next-coarser grid.

    In 2-D, interior coarse point (I, J) (fine point (2I, 2J)) receives

        (4*c + 2*(n+s+w+e) + (nw+ne+sw+se)) / 16 .

    In 3-D the analogous 27-point tensor-product weighting applies.  The
    coarse boundary shell is set to zero: restriction is applied to
    residuals, which vanish on the boundary.
    """
    if fine.ndim == 3:
        check_cube_grid(fine, "fine")
        return _restrict_full_weighting_3d(fine, out)
    check_square_grid(fine, "fine")
    nc = coarsen_size(fine.shape[0])
    out = prepare_out(out, (nc, nc), fine.dtype, "coarse")
    c = fine[2:-2:2, 2:-2:2]
    n_ = fine[1:-3:2, 2:-2:2]
    s_ = fine[3:-1:2, 2:-2:2]
    w_ = fine[2:-2:2, 1:-3:2]
    e_ = fine[2:-2:2, 3:-1:2]
    nw = fine[1:-3:2, 1:-3:2]
    ne = fine[1:-3:2, 3:-1:2]
    sw = fine[3:-1:2, 1:-3:2]
    se = fine[3:-1:2, 3:-1:2]
    acc = out[1:-1, 1:-1]
    # Edge neighbours (weight 2), accumulated first so they can be scaled once.
    np.add(n_, s_, out=acc)
    acc += w_
    acc += e_
    acc *= 2.0
    acc += nw
    acc += ne
    acc += sw
    acc += se
    acc += 4.0 * c
    acc *= 1.0 / 16.0
    return out


def restrict_injection(fine: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Injection restriction: coarse point takes the coincident fine value.

    Used for transferring *solution/boundary* data (not residuals) in the
    full-multigrid estimation phase, where boundary values must carry over.
    """
    if fine.ndim == 3:
        check_cube_grid(fine, "fine")
        nc = coarsen_size(fine.shape[0])
        if out is None:
            out = np.empty((nc,) * 3, dtype=fine.dtype)
        elif out.shape != (nc,) * 3:
            raise ValueError(f"out shape {out.shape} != {(nc,) * 3}")
        np.copyto(out, fine[::2, ::2, ::2])
        return out
    check_square_grid(fine, "fine")
    nc = coarsen_size(fine.shape[0])
    if out is None:
        out = np.empty((nc, nc), dtype=fine.dtype)
    elif out.shape != (nc, nc):
        raise ValueError(f"out shape {out.shape} != ({nc}, {nc})")
    np.copyto(out, fine[::2, ::2])
    return out


def interpolate_bilinear(coarse: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """(Bi/tri)linear interpolation of ``coarse`` onto the next-finer grid.

    Coincident fine points copy the coarse value; fine points midway along a
    coarse edge average the two endpoints; fine cell centers average the
    surrounding coarse points (four in 2-D, eight in 3-D).
    """
    if coarse.ndim == 3:
        return _interpolate_trilinear(coarse, out)
    k = check_square_grid(coarse, "coarse")
    nf = (1 << (k + 1)) + 1
    if out is None:
        out = np.empty((nf, nf), dtype=coarse.dtype)
    elif out.shape != (nf, nf):
        raise ValueError(f"out shape {out.shape} != ({nf}, {nf})")
    out[::2, ::2] = coarse
    # Horizontal midpoints (even rows, odd columns).
    np.add(coarse[:, :-1], coarse[:, 1:], out=out[::2, 1::2])
    out[::2, 1::2] *= 0.5
    # Vertical midpoints (odd rows, even columns).
    np.add(coarse[:-1, :], coarse[1:, :], out=out[1::2, ::2])
    out[1::2, ::2] *= 0.5
    # Cell centers (odd rows, odd columns).
    cc = out[1::2, 1::2]
    np.add(coarse[:-1, :-1], coarse[:-1, 1:], out=cc)
    cc += coarse[1:, :-1]
    cc += coarse[1:, 1:]
    cc *= 0.25
    return out


def interpolate_correction(u: np.ndarray, coarse_correction: np.ndarray) -> np.ndarray:
    """Add the bilinear interpolation of ``coarse_correction`` to ``u`` in place.

    This is step 7 of the paper's RECURSE: "Interpolate result and add
    correction term to current solution."  Only the interior of ``u`` is
    touched — corrections are zero on the Dirichlet boundary.
    """
    if u.ndim == 3:
        nf = u.shape[0]
        nc = coarse_correction.shape[0]
        if (nc - 1) * 2 + 1 != nf:
            raise ValueError(f"correction size {nc} does not refine to {nf}")
        level_of_size(nf)
        full = _interpolate_trilinear(coarse_correction, None)
        inner = (slice(1, -1),) * 3
        u[inner] += full[inner]
        return u
    nf = u.shape[0]
    nc = coarse_correction.shape[0]
    if (nc - 1) * 2 + 1 != nf:
        raise ValueError(f"correction size {nc} does not refine to {nf}")
    level_of_size(nf)
    c = coarse_correction
    # Coincident interior points.
    u[2:-2:2, 2:-2:2] += c[1:-1, 1:-1]
    # Horizontal midpoints on even fine rows (interior rows only).
    u[2:-2:2, 1:-1:2] += 0.5 * (c[1:-1, :-1] + c[1:-1, 1:])
    # Vertical midpoints on even fine columns.
    u[1:-1:2, 2:-2:2] += 0.5 * (c[:-1, 1:-1] + c[1:, 1:-1])
    # Cell centers.
    u[1:-1:2, 1:-1:2] += 0.25 * (c[:-1, :-1] + c[:-1, 1:] + c[1:, :-1] + c[1:, 1:])
    return u
