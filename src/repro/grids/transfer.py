"""Inter-grid transfer operators: restriction and interpolation.

Vertex-centered hierarchy: a fine grid of size N_f = 2**k + 1 maps onto a
coarse grid of size N_c = 2**(k-1) + 1 with coincident points at even fine
indices.  Restriction is full weighting (the transpose of bilinear
interpolation up to a scale factor of 4 in 2D), interpolation is bilinear.
These are the standard pairing for the 5-point Poisson operator and what the
paper's RECURSE steps 5 and 7 perform.
"""

from __future__ import annotations

import numpy as np

from repro.grids.grid import coarsen_size, prepare_out
from repro.util.validation import check_square_grid, level_of_size

__all__ = [
    "interpolate_bilinear",
    "interpolate_correction",
    "restrict_full_weighting",
    "restrict_injection",
]


def restrict_full_weighting(fine: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Full-weighting restriction of ``fine`` onto the next-coarser grid.

    Interior coarse point (I, J) (fine point (2I, 2J)) receives

        (4*c + 2*(n+s+w+e) + (nw+ne+sw+se)) / 16 .

    The coarse boundary ring is set to zero: restriction is applied to
    residuals, which vanish on the boundary.
    """
    check_square_grid(fine, "fine")
    nc = coarsen_size(fine.shape[0])
    out = prepare_out(out, (nc, nc), fine.dtype, "coarse")
    c = fine[2:-2:2, 2:-2:2]
    n_ = fine[1:-3:2, 2:-2:2]
    s_ = fine[3:-1:2, 2:-2:2]
    w_ = fine[2:-2:2, 1:-3:2]
    e_ = fine[2:-2:2, 3:-1:2]
    nw = fine[1:-3:2, 1:-3:2]
    ne = fine[1:-3:2, 3:-1:2]
    sw = fine[3:-1:2, 1:-3:2]
    se = fine[3:-1:2, 3:-1:2]
    acc = out[1:-1, 1:-1]
    # Edge neighbours (weight 2), accumulated first so they can be scaled once.
    np.add(n_, s_, out=acc)
    acc += w_
    acc += e_
    acc *= 2.0
    acc += nw
    acc += ne
    acc += sw
    acc += se
    acc += 4.0 * c
    acc *= 1.0 / 16.0
    return out


def restrict_injection(fine: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Injection restriction: coarse point takes the coincident fine value.

    Used for transferring *solution/boundary* data (not residuals) in the
    full-multigrid estimation phase, where boundary values must carry over.
    """
    check_square_grid(fine, "fine")
    nc = coarsen_size(fine.shape[0])
    if out is None:
        out = np.empty((nc, nc), dtype=fine.dtype)
    elif out.shape != (nc, nc):
        raise ValueError(f"out shape {out.shape} != ({nc}, {nc})")
    np.copyto(out, fine[::2, ::2])
    return out


def interpolate_bilinear(coarse: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Bilinear interpolation of ``coarse`` onto the next-finer grid.

    Coincident fine points copy the coarse value; fine points midway along a
    coarse edge average the two endpoints; fine cell centers average the four
    surrounding coarse points.
    """
    k = check_square_grid(coarse, "coarse")
    nf = (1 << (k + 1)) + 1
    if out is None:
        out = np.empty((nf, nf), dtype=coarse.dtype)
    elif out.shape != (nf, nf):
        raise ValueError(f"out shape {out.shape} != ({nf}, {nf})")
    out[::2, ::2] = coarse
    # Horizontal midpoints (even rows, odd columns).
    np.add(coarse[:, :-1], coarse[:, 1:], out=out[::2, 1::2])
    out[::2, 1::2] *= 0.5
    # Vertical midpoints (odd rows, even columns).
    np.add(coarse[:-1, :], coarse[1:, :], out=out[1::2, ::2])
    out[1::2, ::2] *= 0.5
    # Cell centers (odd rows, odd columns).
    cc = out[1::2, 1::2]
    np.add(coarse[:-1, :-1], coarse[:-1, 1:], out=cc)
    cc += coarse[1:, :-1]
    cc += coarse[1:, 1:]
    cc *= 0.25
    return out


def interpolate_correction(u: np.ndarray, coarse_correction: np.ndarray) -> np.ndarray:
    """Add the bilinear interpolation of ``coarse_correction`` to ``u`` in place.

    This is step 7 of the paper's RECURSE: "Interpolate result and add
    correction term to current solution."  Only the interior of ``u`` is
    touched — corrections are zero on the Dirichlet boundary.
    """
    nf = u.shape[0]
    nc = coarse_correction.shape[0]
    if (nc - 1) * 2 + 1 != nf:
        raise ValueError(f"correction size {nc} does not refine to {nf}")
    level_of_size(nf)
    c = coarse_correction
    # Coincident interior points.
    u[2:-2:2, 2:-2:2] += c[1:-1, 1:-1]
    # Horizontal midpoints on even fine rows (interior rows only).
    u[2:-2:2, 1:-1:2] += 0.5 * (c[1:-1, :-1] + c[1:-1, 1:])
    # Vertical midpoints on even fine columns.
    u[1:-1:2, 2:-2:2] += 0.5 * (c[:-1, 1:-1] + c[1:, 1:-1])
    # Cell centers.
    u[1:-1:2, 1:-1:2] += 0.25 * (c[:-1, :-1] + c[:-1, 1:] + c[1:, :-1] + c[1:, 1:])
    return u
