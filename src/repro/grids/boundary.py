"""Dirichlet boundary handling.

The boundary shell of a grid array carries the Dirichlet data.  Solvers
never modify it; transfers of *error corrections* use zero boundaries
because the error of any iterate vanishes on the boundary.

Two layouts coexist:

* 2-D keeps the historical *ring* layout (top row, bottom row, then the
  left/right columns minus corners) so stored problems and seeded draws
  stay byte-identical;
* 3-D (and the dimension-neutral :func:`boundary_values` /
  :func:`set_boundary_values` pair) uses the row-major walk of the
  boundary mask — stable, and round-trips exactly like the ring.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_cube_grid, check_ndim, check_square_grid

__all__ = [
    "apply_dirichlet",
    "boundary_mask",
    "boundary_ring",
    "boundary_size",
    "boundary_values",
    "set_boundary",
    "set_boundary_values",
]


def boundary_size(n: int, ndim: int = 2) -> int:
    """Number of boundary points of an ``ndim``-cube grid of side ``n``.

    2-D: 4n - 4 (the ring); 3-D: the six faces, n**3 - (n-2)**3.
    """
    check_ndim(ndim)
    return n**ndim - (n - 2) ** ndim


_MASKS: dict[tuple[int, int], np.ndarray] = {}


def boundary_mask(n: int, ndim: int) -> np.ndarray:
    """Read-only boolean mask of the boundary points (cached per shape)."""
    check_ndim(ndim)
    mask = _MASKS.get((n, ndim))
    if mask is None:
        mask = np.ones((n,) * ndim, dtype=bool)
        mask[(slice(1, -1),) * ndim] = False
        mask.setflags(write=False)
        _MASKS[(n, ndim)] = mask
    return mask


def boundary_ring(a: np.ndarray) -> np.ndarray:
    """The boundary values of ``a`` as a 1-D array (row-major walk).

    Order: top row, bottom row, then left/right columns minus corners.  The
    layout is only required to be stable, so round-tripping with
    :func:`set_boundary` preserves values.
    """
    check_square_grid(a, "a")
    return np.concatenate([a[0, :], a[-1, :], a[1:-1, 0], a[1:-1, -1]])


def set_boundary(a: np.ndarray, ring: np.ndarray) -> np.ndarray:
    """Write ``ring`` (layout of :func:`boundary_ring`) onto ``a`` in place."""
    check_square_grid(a, "a")
    n = a.shape[0]
    if ring.shape != (4 * n - 4,):
        raise ValueError(f"ring length {ring.shape} != ({4 * n - 4},)")
    a[0, :] = ring[:n]
    a[-1, :] = ring[n : 2 * n]
    a[1:-1, 0] = ring[2 * n : 3 * n - 2]
    a[1:-1, -1] = ring[3 * n - 2 :]
    return a


def boundary_values(a: np.ndarray) -> np.ndarray:
    """The boundary values of ``a`` as a 1-D array (dimension-neutral).

    2-D uses the historical ring layout of :func:`boundary_ring`; 3-D
    uses the row-major mask walk.  Round-trips with
    :func:`set_boundary_values`.
    """
    if a.ndim == 2:
        return boundary_ring(a)
    check_cube_grid(a, "a")
    return a[boundary_mask(a.shape[0], a.ndim)]


def set_boundary_values(a: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Write ``values`` (layout of :func:`boundary_values`) onto ``a`` in
    place."""
    if a.ndim == 2:
        return set_boundary(a, values)
    check_cube_grid(a, "a")
    n = a.shape[0]
    expected = boundary_size(n, a.ndim)
    if values.shape != (expected,):
        raise ValueError(f"boundary length {values.shape} != ({expected},)")
    a[boundary_mask(n, a.ndim)] = values
    return a


def apply_dirichlet(a: np.ndarray, value: float | np.ndarray) -> np.ndarray:
    """Set the whole boundary shell of ``a`` to ``value`` in place."""
    if a.ndim != 2:
        check_cube_grid(a, "a")
        if np.isscalar(value):
            a[boundary_mask(a.shape[0], a.ndim)] = value
            return a
        return set_boundary_values(a, np.asarray(value, dtype=a.dtype))
    check_square_grid(a, "a")
    if np.isscalar(value):
        a[0, :] = value
        a[-1, :] = value
        a[:, 0] = value
        a[:, -1] = value
        return a
    return set_boundary(a, np.asarray(value, dtype=a.dtype))
