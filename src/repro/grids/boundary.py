"""Dirichlet boundary handling.

The boundary ring of a grid array carries the Dirichlet data.  Solvers never
modify it; transfers of *error corrections* use zero boundaries because the
error of any iterate vanishes on the boundary.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_square_grid

__all__ = ["apply_dirichlet", "boundary_ring", "set_boundary"]


def boundary_ring(a: np.ndarray) -> np.ndarray:
    """The boundary values of ``a`` as a 1-D array (row-major walk).

    Order: top row, bottom row, then left/right columns minus corners.  The
    layout is only required to be stable, so round-tripping with
    :func:`set_boundary` preserves values.
    """
    check_square_grid(a, "a")
    return np.concatenate([a[0, :], a[-1, :], a[1:-1, 0], a[1:-1, -1]])


def set_boundary(a: np.ndarray, ring: np.ndarray) -> np.ndarray:
    """Write ``ring`` (layout of :func:`boundary_ring`) onto ``a`` in place."""
    check_square_grid(a, "a")
    n = a.shape[0]
    if ring.shape != (4 * n - 4,):
        raise ValueError(f"ring length {ring.shape} != ({4 * n - 4},)")
    a[0, :] = ring[:n]
    a[-1, :] = ring[n : 2 * n]
    a[1:-1, 0] = ring[2 * n : 3 * n - 2]
    a[1:-1, -1] = ring[3 * n - 2 :]
    return a


def apply_dirichlet(a: np.ndarray, value: float | np.ndarray) -> np.ndarray:
    """Set the whole boundary ring of ``a`` to ``value`` in place."""
    check_square_grid(a, "a")
    if np.isscalar(value):
        a[0, :] = value
        a[-1, :] = value
        a[:, 0] = value
        a[:, -1] = value
        return a
    return set_boundary(a, np.asarray(value, dtype=a.dtype))
