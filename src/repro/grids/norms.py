"""Norms over grid interiors.

The paper's accuracy metric is a ratio of error 2-norms, so any consistent
norm works; we use the plain Euclidean norm over interior unknowns (boundary
values are fixed data and identical between iterate and reference, so
including them would only dilute the ratio).
"""

from __future__ import annotations

import numpy as np

__all__ = ["error_norm", "interior_norm", "residual_norm"]


def interior_norm(a: np.ndarray) -> float:
    """Euclidean norm of the interior unknowns of ``a`` (2-D or 3-D)."""
    if a.ndim == 2:
        inner = a[1:-1, 1:-1]
        return float(np.sqrt(np.einsum("ij,ij->", inner, inner)))
    inner = a[(slice(1, -1),) * a.ndim]
    return float(np.sqrt(np.einsum("ijk,ijk->", inner, inner)))


def error_norm(x: np.ndarray, x_opt: np.ndarray) -> float:
    """||x - x_opt||_2 over interior points."""
    if x.shape != x_opt.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {x_opt.shape}")
    if x.ndim == 2:
        d = x[1:-1, 1:-1] - x_opt[1:-1, 1:-1]
        return float(np.sqrt(np.einsum("ij,ij->", d, d)))
    inner = (slice(1, -1),) * x.ndim
    d = x[inner] - x_opt[inner]
    return float(np.sqrt(np.einsum("ijk,ijk->", d, d)))


def residual_norm(r: np.ndarray) -> float:
    """Euclidean norm of a residual grid (alias of :func:`interior_norm`)."""
    return interior_norm(r)
