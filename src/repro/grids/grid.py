"""Basic grid construction and view helpers.

Grids are ``ndim``-dimensional cubes (``ndim`` in 2 or 3) with ``n``
points per side; the historical 2-D helpers keep their exact code paths
and the 3-D cases branch off them, so the default 2-D hot path is
byte-identical to the pre-``ndim`` code.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_grid_size, check_ndim, level_of_size

__all__ = [
    "alloc_grid",
    "coarsen_size",
    "interior",
    "mesh_width",
    "prepare_out",
    "refine_size",
    "zero_boundary",
]


def alloc_grid(n: int, fill: float = 0.0, ndim: int = 2) -> np.ndarray:
    """Allocate an ``ndim``-cube float64 grid of side ``n`` filled with
    ``fill``."""
    check_grid_size(n)
    check_ndim(ndim)
    shape = (n,) * ndim
    if fill == 0.0:
        return np.zeros(shape, dtype=np.float64)
    return np.full(shape, fill, dtype=np.float64)


def mesh_width(n: int) -> float:
    """Mesh spacing h = 1/(n-1) of the unit-square grid with n points/side."""
    check_grid_size(n)
    return 1.0 / (n - 1)


def coarsen_size(n: int) -> int:
    """Size of the next-coarser grid: 2**(k-1) + 1."""
    k = level_of_size(n)
    if k == 1:
        raise ValueError("cannot coarsen the 3x3 base grid")
    return (1 << (k - 1)) + 1


def refine_size(n: int) -> int:
    """Size of the next-finer grid: 2**(k+1) + 1."""
    k = level_of_size(n)
    return (1 << (k + 1)) + 1


def interior(a: np.ndarray) -> np.ndarray:
    """Writable view of the interior unknowns of ``a`` (no copy)."""
    if a.ndim == 2:
        return a[1:-1, 1:-1]
    return a[(slice(1, -1),) * a.ndim]


def zero_boundary(a: np.ndarray) -> np.ndarray:
    """Zero the boundary shell of ``a`` in place and return ``a``."""
    if a.ndim == 2:
        a[0, :] = 0.0
        a[-1, :] = 0.0
        a[:, 0] = 0.0
        a[:, -1] = 0.0
        return a
    full = [slice(None)] * a.ndim
    for axis in range(a.ndim):
        sl = list(full)
        sl[axis] = 0
        a[tuple(sl)] = 0.0
        sl[axis] = -1
        a[tuple(sl)] = 0.0
    return a


def prepare_out(
    out: np.ndarray | None,
    shape: tuple[int, ...],
    dtype: np.dtype | type = np.float64,
    name: str = "u",
) -> np.ndarray:
    """Shared prologue of the ``out``-parameter grid kernels.

    Allocates a zeroed grid when ``out`` is None; otherwise validates the
    shape and zeroes the boundary ring (kernels only write the interior).
    """
    if out is None:
        return np.zeros(shape, dtype=dtype)
    if out.shape != shape:
        raise ValueError(f"out shape {out.shape} != {name} shape {shape}")
    return zero_boundary(out)
