"""Basic grid construction and view helpers."""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_grid_size, level_of_size

__all__ = [
    "alloc_grid",
    "coarsen_size",
    "interior",
    "mesh_width",
    "prepare_out",
    "refine_size",
    "zero_boundary",
]


def alloc_grid(n: int, fill: float = 0.0) -> np.ndarray:
    """Allocate an (n, n) float64 grid filled with ``fill``."""
    check_grid_size(n)
    if fill == 0.0:
        return np.zeros((n, n), dtype=np.float64)
    return np.full((n, n), fill, dtype=np.float64)


def mesh_width(n: int) -> float:
    """Mesh spacing h = 1/(n-1) of the unit-square grid with n points/side."""
    check_grid_size(n)
    return 1.0 / (n - 1)


def coarsen_size(n: int) -> int:
    """Size of the next-coarser grid: 2**(k-1) + 1."""
    k = level_of_size(n)
    if k == 1:
        raise ValueError("cannot coarsen the 3x3 base grid")
    return (1 << (k - 1)) + 1


def refine_size(n: int) -> int:
    """Size of the next-finer grid: 2**(k+1) + 1."""
    k = level_of_size(n)
    return (1 << (k + 1)) + 1


def interior(a: np.ndarray) -> np.ndarray:
    """Writable view of the interior unknowns of ``a`` (no copy)."""
    return a[1:-1, 1:-1]


def zero_boundary(a: np.ndarray) -> np.ndarray:
    """Zero the boundary ring of ``a`` in place and return ``a``."""
    a[0, :] = 0.0
    a[-1, :] = 0.0
    a[:, 0] = 0.0
    a[:, -1] = 0.0
    return a


def prepare_out(
    out: np.ndarray | None,
    shape: tuple[int, ...],
    dtype: np.dtype | type = np.float64,
    name: str = "u",
) -> np.ndarray:
    """Shared prologue of the ``out``-parameter grid kernels.

    Allocates a zeroed grid when ``out`` is None; otherwise validates the
    shape and zeroes the boundary ring (kernels only write the interior).
    """
    if out is None:
        return np.zeros(shape, dtype=dtype)
    if out.shape != shape:
        raise ValueError(f"out shape {out.shape} != {name} shape {shape}")
    return zero_boundary(out)
