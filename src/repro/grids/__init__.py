"""Grid substrate: 2D vertex-centered grids, the discrete Poisson operator,
inter-grid transfers, boundary handling, and norms.

Grids are square ``float64`` arrays of shape (N, N) with N = 2**k + 1.  The
outermost ring of cells holds Dirichlet boundary values; interior cells are
unknowns.  The mesh spacing is h = 1/(N-1) and the operator is the standard
5-point discretization of the negative Laplacian,

    (A u)_ij = (4 u_ij - u_{i-1,j} - u_{i+1,j} - u_{i,j-1} - u_{i,j+1}) / h**2,

which is symmetric positive definite on the interior unknowns — exactly the
system the paper's three building blocks (band Cholesky, Red-Black SOR,
multigrid) all solve.
"""

from repro.grids.grid import (
    alloc_grid,
    coarsen_size,
    interior,
    mesh_width,
    refine_size,
    zero_boundary,
)
from repro.grids.poisson import apply_poisson, residual, rhs_scale
from repro.grids.transfer import (
    interpolate_bilinear,
    interpolate_correction,
    restrict_full_weighting,
    restrict_injection,
)
from repro.grids.boundary import (
    apply_dirichlet,
    boundary_ring,
    set_boundary,
)
from repro.grids.norms import error_norm, interior_norm, residual_norm

__all__ = [
    "alloc_grid",
    "apply_dirichlet",
    "apply_poisson",
    "boundary_ring",
    "coarsen_size",
    "error_norm",
    "interior",
    "interior_norm",
    "interpolate_bilinear",
    "interpolate_correction",
    "mesh_width",
    "refine_size",
    "residual",
    "residual_norm",
    "restrict_full_weighting",
    "restrict_injection",
    "rhs_scale",
    "set_boundary",
    "zero_boundary",
]
