"""Grid substrate: vertex-centered grids, the discrete Poisson operator,
inter-grid transfers, boundary handling, and norms — in 2-D and 3-D.

Grids are cube-shaped ``float64`` arrays of side N = 2**k + 1 in ndim in
{2, 3}.  The outermost shell of cells holds Dirichlet boundary values;
interior cells are unknowns.  The mesh spacing is h = 1/(N-1) and the
operator is the standard (2*ndim+1)-point discretization of the negative
Laplacian — in 2-D,

    (A u)_ij = (4 u_ij - u_{i-1,j} - u_{i+1,j} - u_{i,j-1} - u_{i,j+1}) / h**2,

and the 7-point analogue with diagonal 6/h**2 in 3-D — symmetric positive
definite on the interior unknowns, exactly the system the paper's three
building blocks (direct solve, Red-Black SOR, multigrid) all solve.  The
2-D kernels are the historical hand-tuned implementations, byte-identical;
3-D inputs dispatch into separable per-axis implementations.
"""

from repro.grids.grid import (
    alloc_grid,
    coarsen_size,
    interior,
    mesh_width,
    refine_size,
    zero_boundary,
)
from repro.grids.poisson import (
    apply_axis_stencil,
    apply_poisson,
    residual,
    residual_axis_stencil,
    rhs_scale,
)
from repro.grids.transfer import (
    interpolate_bilinear,
    interpolate_correction,
    restrict_full_weighting,
    restrict_injection,
)
from repro.grids.boundary import (
    apply_dirichlet,
    boundary_mask,
    boundary_ring,
    boundary_size,
    boundary_values,
    set_boundary,
    set_boundary_values,
)
from repro.grids.norms import error_norm, interior_norm, residual_norm

__all__ = [
    "alloc_grid",
    "apply_axis_stencil",
    "apply_dirichlet",
    "apply_poisson",
    "boundary_mask",
    "boundary_ring",
    "boundary_size",
    "boundary_values",
    "coarsen_size",
    "error_norm",
    "interior",
    "interior_norm",
    "interpolate_bilinear",
    "interpolate_correction",
    "mesh_width",
    "refine_size",
    "residual",
    "residual_norm",
    "restrict_full_weighting",
    "residual_axis_stencil",
    "restrict_injection",
    "rhs_scale",
    "set_boundary",
    "set_boundary_values",
    "zero_boundary",
]
