"""Picklable trial tasks for the DP tuners, and their worker functions.

A task carries *only data*: the machine profile, the training keyfields
(distribution, instances, seed — the deterministic seed is what makes a
re-run in another process reproduce the exact training instances), the
partially built plan table, and which candidate to evaluate.  The worker
rebuilds the same tuner state from that data and runs the *same*
single-candidate evaluation code the serial DP runs
(:meth:`~repro.tuner.dp.VCycleTuner._evaluate_candidate`,
:meth:`~repro.tuner.full_mg.FullMGTuner._evaluate_variant`), so trained
iteration counts and cost-model seconds are bit-identical to a serial
tune.  The only difference is pruning: workers evaluate with an infinite
budget, and any candidate the serial tuner would have pruned prices
strictly worse than the serial winner, so per-slot selection — done in
the parent, folding outcomes in serial enumeration order with a strict
``<`` — picks exactly the same plan.

Worker processes cache the reconstructed tuners (and with them training
instances, reference solutions, and direct-solver factorizations) across
tasks, so per-task reconstruction cost is paid once per worker, not once
per candidate.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any

from repro.machines.profile import MachineProfile
from repro.tuner.choices import Choice, DirectChoice, RecurseChoice, SORChoice
from repro.tuner.config import plan_from_dict, plan_to_dict
from repro.tuner.dp import CandidateOutcome, CandidateReport, VCycleTuner, _TableView
from repro.tuner.full_mg import FullMGTuner, _FullTableView
from repro.tuner.plan import TunedVPlan
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.util.validation import size_of_level

__all__ = [
    "FMGEstimateTask",
    "VCandidateTask",
    "evaluate_fmg_estimate",
    "evaluate_v_candidate",
    "tune_fmg_level_parallel",
    "tune_v_level_parallel",
]

#: ((level, acc_index), choice) pairs of an in-progress plan table.
TableItems = tuple[tuple[tuple[int, int], Choice], ...]


@dataclass(frozen=True)
class VCandidateTask:
    """One V-cycle candidate evaluation, as pure data."""

    profile: MachineProfile
    threads: int | None
    distribution: str
    instances: int
    seed: int | None
    accuracies: tuple[float, ...]
    aggregate: str
    max_sor_iters: int
    max_recurse_iters: int
    level: int
    table: TableItems
    acc_index: int
    kind: str
    sub_accuracy: int | None
    #: canonical operator spec string (pure data, so tasks stay picklable)
    operator: str = "poisson"
    #: kernel-backend tuning dimension; always a resolved name (the
    #: parent resolves "auto" before building tasks), so workers place
    #: per-level backends identically whatever is installed there
    backend: str = "numpy"


@dataclass(frozen=True)
class FMGEstimateTask:
    """One full-MG ESTIMATE_j variant family (all slots), as pure data."""

    profile: MachineProfile
    threads: int | None
    distribution: str
    instances: int
    seed: int | None
    aggregate: str
    max_sor_iters: int
    max_recurse_iters: int
    level: int
    table: TableItems
    vplan_payload: dict[str, Any]
    j: int
    #: canonical operator spec string (pure data, so tasks stay picklable)
    operator: str = "poisson"


def _probe_choice(kind: str, j: int | None) -> Choice:
    """The probe the candidate_filter sees (mirrors the serial probes)."""
    if kind == "direct":
        return DirectChoice()
    if kind == "recurse":
        assert j is not None
        return RecurseChoice(sub_accuracy=j, iterations=1)
    if kind == "sor":
        return SORChoice(iterations=1)
    raise ValueError(f"unknown candidate kind {kind!r}")


# -- worker-side caches ----------------------------------------------------
#
# Keyed by the tuning context (machine fingerprint, training keyfields,
# search caps); distinct levels and tables arrive per task.  Living at
# module scope, the caches persist for the worker process lifetime —
# and are bounded, so a long-lived pool serving many distinct contexts
# (machines, vplans) evicts the oldest instead of growing forever.

_CACHE_LIMIT = 8
_V_TUNERS: dict[tuple, VCycleTuner] = {}
_FMG_TUNERS: dict[tuple, FullMGTuner] = {}


def _cache_put(cache: dict, key: tuple, value) -> None:
    while len(cache) >= _CACHE_LIMIT:
        cache.pop(next(iter(cache)))
    cache[key] = value


def _v_tuner_for(task: VCandidateTask) -> VCycleTuner:
    key = (
        task.profile.fingerprint(),
        task.threads,
        task.distribution,
        task.operator,
        task.instances,
        task.seed,
        task.accuracies,
        task.aggregate,
        task.max_sor_iters,
        task.max_recurse_iters,
        task.backend,
    )
    tuner = _V_TUNERS.get(key)
    if tuner is None:
        tuner = VCycleTuner(
            max_level=task.level,
            accuracies=task.accuracies,
            training=TrainingData(
                distribution=task.distribution,
                instances=task.instances,
                seed=task.seed,
                operator=task.operator,
            ),
            timing=CostModelTiming(task.profile, task.threads),
            max_sor_iters=task.max_sor_iters,
            max_recurse_iters=task.max_recurse_iters,
            aggregate=task.aggregate,  # type: ignore[arg-type]
            keep_audit=False,
            backend=task.backend,
        )
        _cache_put(_V_TUNERS, key, tuner)
    return tuner


def _fmg_tuner_for(task: FMGEstimateTask) -> FullMGTuner:
    vplan_key = json.dumps(task.vplan_payload, sort_keys=True, separators=(",", ":"))
    key = (
        task.profile.fingerprint(),
        task.threads,
        task.distribution,
        task.operator,
        task.instances,
        task.seed,
        task.aggregate,
        task.max_sor_iters,
        task.max_recurse_iters,
        vplan_key,
    )
    tuner = _FMG_TUNERS.get(key)
    if tuner is None:
        vplan = plan_from_dict(task.vplan_payload)
        if not isinstance(vplan, TunedVPlan):
            raise TypeError("FMGEstimateTask.vplan_payload must be a multigrid-v plan")
        tuner = FullMGTuner(
            vplan=vplan,
            training=TrainingData(
                distribution=task.distribution,
                instances=task.instances,
                seed=task.seed,
                operator=task.operator,
            ),
            timing=CostModelTiming(task.profile, task.threads),
            max_sor_iters=task.max_sor_iters,
            max_recurse_iters=task.max_recurse_iters,
            aggregate=task.aggregate,  # type: ignore[arg-type]
            keep_audit=False,
        )
        _cache_put(_FMG_TUNERS, key, tuner)
    return tuner


# -- worker functions ------------------------------------------------------


def evaluate_v_candidate(task: VCandidateTask) -> CandidateOutcome:
    """Evaluate one V-cycle candidate (module-level: pool-picklable)."""
    tuner = _v_tuner_for(task)
    table = dict(task.table)
    n = size_of_level(task.level)
    bundle = tuner.training.at_level(task.level)
    view = _TableView(table, task.level)
    m = len(task.accuracies)
    sub_meters = [tuner._meter_below(table, task.level, j) for j in range(m)]
    outcome = tuner._evaluate_candidate(
        task.level,
        task.acc_index,
        task.accuracies[task.acc_index],
        n,
        bundle,
        view,
        sub_meters,
        task.kind,
        task.sub_accuracy,
        math.inf,
    )
    if outcome is None:  # pragma: no cover - parent pre-filters candidates
        raise RuntimeError(f"candidate {task.kind!r} filtered inside worker")
    return outcome


def evaluate_fmg_estimate(
    task: FMGEstimateTask,
) -> list[list[CandidateOutcome | None]]:
    """Evaluate every solver variant of ESTIMATE_j for every accuracy slot.

    Returns ``outcomes[acc_index][variant_index]`` in the serial variant
    enumeration order (SOR first, then RECURSE_l highest l first).
    """
    tuner = _fmg_tuner_for(task)
    table = dict(task.table)
    n = size_of_level(task.level)
    bundle = tuner.training.at_level(task.level)
    view = _FullTableView(table, tuner.vplan, task.level)
    starts = tuner._estimate_states(view, bundle, task.level, task.j)
    est_meter = tuner._estimate_meter(table, task.level, task.j)
    outcomes: list[list[CandidateOutcome | None]] = []
    for i, target in enumerate(tuner.vplan.accuracies):
        row = [
            tuner._evaluate_variant(
                task.level,
                i,
                target,
                n,
                bundle,
                task.j,
                kind,
                sub,
                starts,
                est_meter,
                math.inf,
            )
            for kind, sub in tuner._variant_order()
        ]
        outcomes.append(row)
    return outcomes


# -- parent-side level drivers ---------------------------------------------


def _require_cost_model(timing: Any) -> CostModelTiming:
    if not isinstance(timing, CostModelTiming):
        raise NotImplementedError(
            "parallel trial execution requires deterministic CostModelTiming; "
            "wallclock timing measured across racing worker processes would "
            "not reproduce the serial tuner's choices"
        )
    return timing


def tune_v_level_parallel(
    tuner: VCycleTuner,
    level: int,
    table: dict[tuple[int, int], Choice],
    audit: list[CandidateReport],
) -> None:
    """Tune one V-cycle level by fanning its candidates across workers."""
    timing = _require_cost_model(tuner.timing)
    m = len(tuner.accuracies)
    frozen_table: TableItems = tuple(sorted(table.items()))
    tasks: list[VCandidateTask] = []
    slots: list[int] = []
    for i in range(m):
        for kind, j in tuner._candidate_order():
            if not tuner._allowed(level, i, _probe_choice(kind, j)):
                continue
            tasks.append(
                VCandidateTask(
                    profile=timing.profile,
                    threads=timing.threads,
                    distribution=tuner.training.distribution,
                    instances=tuner.training.instances,
                    seed=tuner.training.seed,
                    accuracies=tuner.accuracies,
                    aggregate=str(tuner.aggregate),
                    max_sor_iters=tuner.max_sor_iters,
                    max_recurse_iters=tuner.max_recurse_iters,
                    level=level,
                    table=frozen_table,
                    acc_index=i,
                    kind=kind,
                    sub_accuracy=j,
                    operator=tuner.training.operator_name,
                    backend=tuner.backend,
                )
            )
            slots.append(i)
    outcomes = tuner.trial_executor.map(evaluate_v_candidate, tasks)
    per_slot: dict[int, list[CandidateOutcome]] = {i: [] for i in range(m)}
    for i, outcome in zip(slots, outcomes):
        per_slot[i].append(outcome)
    for i in range(m):
        best_choice: Choice | None = None
        best_time = math.inf
        for outcome in per_slot[i]:
            if outcome.feasible and outcome.seconds < best_time:
                best_choice, best_time = outcome.choice, outcome.seconds
        if best_choice is None:
            raise RuntimeError(
                f"no feasible candidate at level {level}, accuracy index {i} "
                f"(candidate_filter too restrictive?)"
            )
        table[(level, i)] = best_choice
        if tuner.keep_audit:
            chosen_desc = best_choice.describe()
            audit.extend(
                CandidateReport(
                    level,
                    i,
                    outcome.description,
                    outcome.seconds,
                    outcome.feasible,
                    chosen=(outcome.feasible and outcome.description == chosen_desc),
                )
                for outcome in per_slot[i]
            )


def tune_fmg_level_parallel(
    tuner: FullMGTuner,
    level: int,
    table: dict[tuple[int, int], Choice],
    audit: list[CandidateReport],
) -> None:
    """Tune one full-MG level with one worker task per estimate accuracy."""
    timing = _require_cost_model(tuner.timing)
    accuracies = tuner.vplan.accuracies
    m = len(accuracies)
    frozen_table: TableItems = tuple(sorted(table.items()))
    vplan_payload = plan_to_dict(tuner.vplan)
    tasks = [
        FMGEstimateTask(
            profile=timing.profile,
            threads=timing.threads,
            distribution=tuner.training.distribution,
            instances=tuner.training.instances,
            seed=tuner.training.seed,
            aggregate=str(tuner.aggregate),
            max_sor_iters=tuner.max_sor_iters,
            max_recurse_iters=tuner.max_recurse_iters,
            level=level,
            table=frozen_table,
            vplan_payload=vplan_payload,
            j=j,
            operator=tuner.training.operator_name,
        )
        for j in range(m)
    ]
    per_estimate = tuner.trial_executor.map(evaluate_fmg_estimate, tasks)
    n = size_of_level(level)
    bundle = tuner.training.at_level(level)
    for i in range(m):
        collected: list[CandidateOutcome] = [tuner._evaluate_direct(n, bundle)]
        for j in range(m):
            collected.extend(o for o in per_estimate[j][i] if o is not None)
        best_choice: Choice | None = None
        best_time = math.inf
        for outcome in collected:
            if outcome.feasible and outcome.seconds < best_time:
                best_choice, best_time = outcome.choice, outcome.seconds
        assert best_choice is not None  # direct is always considered
        table[(level, i)] = best_choice
        if tuner.keep_audit:
            chosen_desc = best_choice.describe()
            audit.extend(
                CandidateReport(
                    level,
                    i,
                    outcome.description,
                    outcome.seconds,
                    outcome.feasible,
                    chosen=(outcome.feasible and outcome.description == chosen_desc),
                )
                for outcome in collected
            )
