"""Picklable candidate tasks for the model-based tuner.

Mirrors :mod:`repro.parallel.dp_tasks`, with one addition: the task
carries the serialized learned :class:`~repro.modeltuner.costmodel.
CostModel` (as canonical JSON, so tasks stay hashable pure data).  The
stock DP worker rebuilds ``CostModelTiming(profile)`` and would silently
revert a model-priced tune to analytic pricing inside worker processes;
this worker rebuilds :class:`~repro.modeltuner.costmodel.ModelTiming`
from the payload instead, so model-guided evaluation is byte-identical
whether it runs in-process (``jobs=1``) or on a pool (``jobs=4``) — the
property the modeltuner hypothesis suite pins.

:class:`~repro.modeltuner.bo.BOSearch` routes *every* candidate
evaluation — serial or parallel — through :func:`evaluate_model_candidate`
with an infinite pruning budget, so there is exactly one evaluation code
path and no serial-only pruning state to diverge on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machines.profile import MachineProfile
from repro.tuner.dp import CandidateOutcome, VCycleTuner, _TableView
from repro.tuner.timing import CostModelTiming
from repro.tuner.training import TrainingData
from repro.util.validation import size_of_level

__all__ = ["ModelCandidateTask", "evaluate_model_candidate"]

#: ((level, acc_index), choice) pairs of an in-progress plan table.
TableItems = tuple


@dataclass(frozen=True)
class ModelCandidateTask:
    """One model-priced V-cycle candidate evaluation, as pure data."""

    profile: MachineProfile
    threads: int | None
    distribution: str
    instances: int
    seed: int | None
    accuracies: tuple[float, ...]
    aggregate: str
    max_sor_iters: int
    max_recurse_iters: int
    level: int
    table: TableItems
    acc_index: int
    kind: str
    sub_accuracy: int | None
    operator: str = "poisson"
    backend: str = "numpy"
    #: canonical JSON of ``CostModel.to_dict()``; ``None`` evaluates with
    #: the analytic ``CostModelTiming(profile)`` (warm-machine search)
    model_payload: str | None = None


# -- worker-side cache -----------------------------------------------------
#
# Same shape and bound as dp_tasks: keyed by the tuning context plus the
# model fingerprint, so a long-lived pool serving several fitted models
# keeps each one's tuner (training instances, factorizations) warm.

_CACHE_LIMIT = 8
_MODEL_TUNERS: dict[tuple, VCycleTuner] = {}


def _cache_put(cache: dict, key: tuple, value) -> None:
    while len(cache) >= _CACHE_LIMIT:
        cache.pop(next(iter(cache)))
    cache[key] = value


def _timing_for(task: ModelCandidateTask) -> CostModelTiming:
    if task.model_payload is None:
        return CostModelTiming(task.profile, task.threads)
    from repro.modeltuner.costmodel import CostModel, ModelTiming

    return ModelTiming(CostModel.from_json(task.model_payload), task.threads)


def _model_key(task: ModelCandidateTask) -> str:
    if task.model_payload is None:
        return ""
    import hashlib

    return hashlib.sha256(task.model_payload.encode("utf-8")).hexdigest()[:16]


def _tuner_for(task: ModelCandidateTask) -> VCycleTuner:
    key = (
        task.profile.fingerprint(),
        _model_key(task),
        task.threads,
        task.distribution,
        task.operator,
        task.instances,
        task.seed,
        task.accuracies,
        task.aggregate,
        task.max_sor_iters,
        task.max_recurse_iters,
        task.backend,
    )
    tuner = _MODEL_TUNERS.get(key)
    if tuner is None:
        tuner = VCycleTuner(
            max_level=task.level,
            accuracies=task.accuracies,
            training=TrainingData(
                distribution=task.distribution,
                instances=task.instances,
                seed=task.seed,
                operator=task.operator,
            ),
            timing=_timing_for(task),
            max_sor_iters=task.max_sor_iters,
            max_recurse_iters=task.max_recurse_iters,
            aggregate=task.aggregate,  # type: ignore[arg-type]
            keep_audit=False,
            backend=task.backend,
        )
        _cache_put(_MODEL_TUNERS, key, tuner)
    return tuner


def evaluate_model_candidate(task: ModelCandidateTask) -> CandidateOutcome:
    """Evaluate one candidate under model pricing (pool-picklable).

    Identical to :func:`repro.parallel.dp_tasks.evaluate_v_candidate`
    except for the timing strategy: training is numerics (backend- and
    pricing-independent), so iteration counts match the DP's, and only
    the seconds differ.
    """
    tuner = _tuner_for(task)
    table = dict(task.table)
    n = size_of_level(task.level)
    bundle = tuner.training.at_level(task.level)
    view = _TableView(table, task.level)
    m = len(task.accuracies)
    sub_meters = [tuner._meter_below(table, task.level, j) for j in range(m)]
    outcome = tuner._evaluate_candidate(
        task.level,
        task.acc_index,
        task.accuracies[task.acc_index],
        n,
        bundle,
        view,
        sub_meters,
        task.kind,
        task.sub_accuracy,
        math.inf,
    )
    if outcome is None:  # pragma: no cover - the parent pre-filters
        raise RuntimeError(f"candidate {task.kind!r} filtered inside worker")
    return outcome
