"""Process-pool trial execution for the autotuner and tuning store.

The paper's autotuner is embarrassingly parallel at the trial level:
candidate timings are independent of each other, and campaign cells are
independent tuning problems.  This subsystem exposes both axes:

* :class:`~repro.parallel.executor.TrialExecutor` — the interface the
  DP tuners (:class:`~repro.tuner.dp.VCycleTuner`,
  :class:`~repro.tuner.full_mg.FullMGTuner`) use to evaluate candidate
  batches.  :class:`~repro.parallel.executor.SerialExecutor` is the
  bit-identical in-process default; :class:`~repro.parallel.executor.
  ProcessPoolTrialExecutor` fans batches across worker processes.
  Every task is pure data (profile, training seed, partial plan table),
  so workers reconstruct identical training instances and the parallel
  tuner selects exactly the plan the serial tuner would.
* :func:`~repro.parallel.campaigns.run_cells_parallel` — campaign-cell
  fan-out.  Each worker opens its own WAL-mode
  :class:`~repro.store.trialdb.TrialDB` connection on the shared store
  and commits its cell atomically, so an interrupted parallel campaign
  resumes exactly like a serial one.

Entry points for callers: ``Campaign.run(jobs=N)``,
``core.autotune_cached(jobs=N)``, ``core.solve_service(jobs=N)``, and
``repro-mg store tune --jobs N``.
"""

from repro.parallel.campaigns import run_cells_parallel
from repro.parallel.dp_tasks import (
    FMGEstimateTask,
    VCandidateTask,
    evaluate_fmg_estimate,
    evaluate_v_candidate,
)
from repro.parallel.executor import (
    ProcessPoolTrialExecutor,
    SerialExecutor,
    TrialExecutor,
    resolve_executor,
)

__all__ = [
    "FMGEstimateTask",
    "ProcessPoolTrialExecutor",
    "SerialExecutor",
    "TrialExecutor",
    "VCandidateTask",
    "evaluate_fmg_estimate",
    "evaluate_v_candidate",
    "resolve_executor",
    "run_cells_parallel",
]
