"""Parallel campaign execution: one worker process per in-flight cell.

Campaign cells — (machine, distribution, operator, level) tuning
problems — are fully independent: distinct machines have distinct
fingerprints and distinct (distribution, operator, level) triples have
distinct tuning keys, so no two cells ever write the same registry row.  That makes a campaign
embarrassingly parallel: the driver fans pending cells across a process
pool, and each worker opens its *own* WAL-mode
:class:`~repro.store.trialdb.TrialDB` connection on the shared database
path (SQLite connections must not cross process boundaries).  WAL plus
a busy timeout serializes the actual commits; each worker commits its
cell's completion as one transaction after the plan and trial rows are
durable, so a campaign killed mid-run loses at most the in-flight cells
and resumes without re-tuning completed ones — exactly the serial
resumability contract, at N-way concurrency.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.parallel.executor import _default_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.campaign import Campaign, CampaignSpec, CellResult

__all__ = ["run_cells_parallel"]


@dataclass(frozen=True)
class _CellTask:
    """One pending cell, addressed by database path (pool-picklable)."""

    db_path: str
    spec: "CampaignSpec"
    machine: str
    distribution: str
    operator: str
    max_level: int


def _tune_cell(task: _CellTask) -> "CellResult":
    """Worker: tune one cell through a private store connection."""
    from repro.store.campaign import execute_cell
    from repro.store.registry import PlanRegistry
    from repro.store.trialdb import TrialDB

    with TrialDB(task.db_path) as db:
        return execute_cell(
            PlanRegistry(db),
            task.spec,
            task.machine,
            task.distribution,
            task.operator,
            task.max_level,
        )


def run_cells_parallel(
    campaign: "Campaign",
    jobs: int,
    max_cells: int | None = None,
    on_cell: "Callable[[CellResult], None] | None" = None,
) -> "list[CellResult]":
    """Run a campaign's pending cells on a pool of ``jobs`` workers.

    Semantics mirror ``Campaign.run``: already-completed cells come back
    as ``source='skipped'``, at most ``max_cells`` pending cells execute,
    and results are returned in sweep order.  ``on_cell`` fires from the
    driver process as cells finish (completion order, not sweep order).
    """
    from repro.store.campaign import CellResult

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, not {jobs}")
    if campaign.db.path == ":memory:":
        raise ValueError(
            "parallel campaigns need a file-backed store: worker processes "
            "open their own connections to the database path, and ':memory:' "
            "cannot be shared across processes"
        )
    pending = campaign.pending()
    to_run = pending if max_cells is None else pending[: max(max_cells, 0)]
    results: dict[tuple[str, str, str, int], CellResult] = {}
    if to_run:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(to_run)),
            mp_context=_default_context(),
        ) as pool:
            futures = {}
            for cell in to_run:
                task = _CellTask(campaign.db.path, campaign.spec, *cell)
                futures[pool.submit(_tune_cell, task)] = cell
            for future in as_completed(futures):
                result = future.result()
                results[futures[future]] = result
                if on_cell is not None:
                    on_cell(result)

    # Assemble in sweep order, mirroring the serial path: completed cells
    # are 'skipped', executed cells report their outcome, and the sweep
    # stops at the first pending cell beyond the max_cells budget.
    out: list[CellResult] = []
    pending_set = set(pending)
    for cell in campaign.spec.cells():
        if cell not in pending_set:
            machine, dist, operator, level = cell
            out.append(CellResult(machine, dist, operator, level, source="skipped"))
        elif cell in results:
            out.append(results[cell])
        else:
            break
    return out
