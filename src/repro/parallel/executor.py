"""Trial executors: where candidate evaluations actually run.

The tuners hand an executor an ordered batch of picklable tasks and a
module-level task function; the executor returns the results in task
order.  Two implementations:

* :class:`SerialExecutor` — evaluate in the calling process, in order.
  This is the default and is bit-identical to pre-parallel behavior.
* :class:`ProcessPoolTrialExecutor` — fan tasks across a persistent
  :class:`concurrent.futures.ProcessPoolExecutor`.  Results come back
  in task order regardless of completion order, so selection logic
  downstream is deterministic.

The pool prefers the ``fork`` start method where the platform offers it
(workers inherit ``sys.path`` and import state, and startup is cheap);
set ``$REPRO_MG_MP_START`` to ``spawn``/``forkserver``/``fork`` to
override.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor as _FuturesPool
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "ProcessPoolTrialExecutor",
    "SerialExecutor",
    "TrialExecutor",
    "resolve_executor",
]

T = TypeVar("T")
R = TypeVar("R")

#: Environment override for the multiprocessing start method.
MP_START_ENV = "REPRO_MG_MP_START"


def _default_context() -> multiprocessing.context.BaseContext:
    name = os.environ.get(MP_START_ENV)
    if name:
        return multiprocessing.get_context(name)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class TrialExecutor:
    """Interface: ordered ``map`` over independent trial tasks.

    ``fn`` must be a module-level function and every task must be
    picklable — process-backed executors ship both to worker processes.
    Implementations guarantee results are returned in task order.
    """

    #: degree of parallelism the executor offers (1 = serial)
    jobs: int = 1

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialExecutor(TrialExecutor):
    """Evaluate tasks inline, one at a time, in task order."""

    jobs = 1

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        return [fn(task) for task in tasks]


class ProcessPoolTrialExecutor(TrialExecutor):
    """Evaluate tasks on a persistent pool of worker processes.

    The pool is created lazily on first :meth:`map` and reused across
    calls (the DP tuners issue one batch per level; respawning workers
    per batch would dominate small tunes).  Close it explicitly or use
    the executor as a context manager.
    """

    def __init__(
        self,
        jobs: int,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, not {jobs}")
        self.jobs = jobs
        self._mp_context = mp_context
        self._pool: _FuturesPool | None = None

    def _ensure_pool(self) -> _FuturesPool:
        if self._pool is None:
            self._pool = _FuturesPool(
                max_workers=self.jobs,
                mp_context=self._mp_context or _default_context(),
            )
        return self._pool

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> list[R]:
        batch: Sequence[T] = list(tasks)
        if not batch:
            return []
        pool = self._ensure_pool()
        chunksize = max(1, len(batch) // (self.jobs * 4))
        return list(pool.map(fn, batch, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def resolve_executor(jobs: "int | TrialExecutor | None") -> TrialExecutor:
    """Executor for a ``jobs=`` argument.

    ``None`` or ``1`` selects the serial executor; ``N > 1`` a process
    pool of N workers; an existing :class:`TrialExecutor` passes
    through unchanged (the caller keeps ownership of its lifecycle).
    """
    if jobs is None:
        return SerialExecutor()
    if isinstance(jobs, TrialExecutor):
        return jobs
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise TypeError(f"jobs must be an int or TrialExecutor, not {jobs!r}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, not {jobs}")
    if jobs == 1:
        return SerialExecutor()
    return ProcessPoolTrialExecutor(jobs)
