"""Thomas algorithm for SPD tridiagonal systems.

Used for the 1-D analogue of the model problem in tests, and as the base
case of block elimination experiments.  O(m) time, no pivoting (valid for
the diagonally dominant SPD matrices that arise here).
"""

from __future__ import annotations

import numpy as np

__all__ = ["thomas_solve"]


def thomas_solve(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve the tridiagonal system with the given bands.

    ``lower`` has length m-1 (subdiagonal), ``diag`` length m, ``upper``
    length m-1 (superdiagonal).  Inputs are not modified.
    """
    m = diag.shape[0]
    if lower.shape != (m - 1,) or upper.shape != (m - 1,) or rhs.shape != (m,):
        raise ValueError("inconsistent band/rhs lengths")
    c = np.empty(m - 1, dtype=np.float64)
    d = np.empty(m, dtype=np.float64)
    piv = diag[0]
    if piv == 0.0:
        raise np.linalg.LinAlgError("zero pivot in Thomas solve")
    c[0] = upper[0] / piv
    d[0] = rhs[0] / piv
    for i in range(1, m):
        piv = diag[i] - lower[i - 1] * c[i - 1]
        if piv == 0.0:
            raise np.linalg.LinAlgError(f"zero pivot at row {i}")
        if i < m - 1:
            c[i] = upper[i] / piv
        d[i] = (rhs[i] - lower[i - 1] * d[i - 1]) / piv
    x = d
    for i in range(m - 2, -1, -1):
        x[i] -= c[i] * x[i + 1]
    return x
