"""Direct-solver substrate: the paper's band-Cholesky building block.

The paper's direct method is LAPACK ``DPBSV`` — band Cholesky factorization
plus banded triangular solves — applied to the SPD 5-point Poisson matrix.
This package provides that substrate in three tiers:

1. :func:`cholesky_banded_reference` / :func:`solve_banded_reference` —
   textbook scalar-loop band Cholesky.  Slow; exists as an independently
   checkable specification used by the tests.
2. :class:`BlockTridiagonalCholesky` — the production implementation.  The
   Poisson matrix in natural row-major ordering is block tridiagonal with
   (N-2)x(N-2) blocks, so band Cholesky reduces to a sequence of dense
   Cholesky / triangular-solve / SYRK block operations, all vectorized.
   Same O(n * w^2) = O(N^4) arithmetic as DPBSV.
3. ``backend="lapack"`` in :class:`DirectSolver` — scipy's binding of the
   very LAPACK routine family the paper used (``pbtrf``/``pbtrs`` via
   ``cholesky_banded``/``cho_solve_banded``), used for cross-validation and
   as the fast path at larger sizes.
"""

from repro.linalg.band import (
    bandwidth_of_grid,
    cholesky_banded_reference,
    poisson_band_matrix,
    solve_banded_reference,
)
from repro.linalg.blocktri import BlockTridiagonalCholesky, poisson_blocks
from repro.linalg.tridiag import thomas_solve
from repro.linalg.direct import DirectSolver, build_interior_rhs, scatter_interior
from repro.linalg.sparse_nd import (
    AxisStencilFactor,
    axis_stencil_matrix,
    solve_axis_stencil,
)

__all__ = [
    "AxisStencilFactor",
    "axis_stencil_matrix",
    "solve_axis_stencil",
    "BlockTridiagonalCholesky",
    "DirectSolver",
    "bandwidth_of_grid",
    "build_interior_rhs",
    "cholesky_banded_reference",
    "poisson_band_matrix",
    "poisson_blocks",
    "scatter_interior",
    "solve_banded_reference",
    "thomas_solve",
]
