"""Symmetric band storage and a reference scalar band Cholesky.

Band storage follows the LAPACK lower convention: for a symmetric matrix A
of order m with bandwidth w, ``ab[i, j] = A[j + i, j]`` for ``0 <= i <= w``
and ``j + i < m``.  Row 0 is the main diagonal.

The reference factorization here is written with explicit loops — it is the
executable specification that the vectorized production solver
(:mod:`repro.linalg.blocktri`) and the LAPACK backend are tested against on
small systems.  Do not use it in hot paths.
"""

from __future__ import annotations

import numpy as np

from repro.grids.poisson import rhs_scale
from repro.util.validation import check_grid_size

__all__ = [
    "bandwidth_of_grid",
    "cholesky_banded_reference",
    "poisson_band_matrix",
    "solve_banded_reference",
]


def bandwidth_of_grid(n: int) -> int:
    """Half-bandwidth of the Poisson matrix for an n x n grid: w = n - 2.

    With natural row-major ordering of the (n-2)^2 interior unknowns, the
    north/south couplings sit n-2 sub/super-diagonals away.
    """
    check_grid_size(n)
    return n - 2


def poisson_band_matrix(n: int) -> np.ndarray:
    """Lower band storage of the SPD 5-point Poisson matrix for grid size n.

    Returns ``ab`` of shape (w + 1, m) with m = (n-2)^2 unknowns and
    w = n - 2.  Entries: 4/h^2 on the diagonal, -1/h^2 on the first
    subdiagonal (except across grid-row boundaries) and on subdiagonal w.
    """
    w = bandwidth_of_grid(n)
    m = w * w
    inv_h2 = rhs_scale(n)
    ab = np.zeros((w + 1, m), dtype=np.float64)
    ab[0, :] = 4.0 * inv_h2
    # West/east coupling: adjacent unknowns within a grid row.  The last
    # unknown of each grid row has no east neighbour.
    sub1 = np.full(m - 1, -inv_h2)
    sub1[w - 1 :: w] = 0.0
    ab[1, : m - 1] = sub1
    # North/south coupling: unknowns one grid row apart.
    if w >= 2:
        ab[w, : m - w] = -inv_h2
    return ab


def cholesky_banded_reference(ab: np.ndarray) -> np.ndarray:
    """Band Cholesky A = L L^T in lower band storage (scalar reference).

    Input is not modified.  Raises :class:`np.linalg.LinAlgError` if a pivot
    is not positive (matrix not SPD to working precision).
    """
    w = ab.shape[0] - 1
    m = ab.shape[1]
    lb = ab.copy()
    for j in range(m):
        pivot = lb[0, j]
        if pivot <= 0.0:
            raise np.linalg.LinAlgError(f"non-positive pivot at column {j}")
        d = np.sqrt(pivot)
        lb[0, j] = d
        reach = min(w, m - 1 - j)
        if reach == 0:
            continue
        lb[1 : reach + 1, j] /= d
        v = lb[1 : reach + 1, j]
        # Rank-1 update of the trailing triangle within the band.
        for t in range(reach):
            col = j + 1 + t
            lb[0 : reach - t, col] -= v[t] * v[t:]
    return lb


def solve_banded_reference(lb: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve A x = rhs given the band Cholesky factor from
    :func:`cholesky_banded_reference` (scalar reference implementation)."""
    w = lb.shape[0] - 1
    m = lb.shape[1]
    if rhs.shape != (m,):
        raise ValueError(f"rhs shape {rhs.shape} != ({m},)")
    y = rhs.astype(np.float64, copy=True)
    # Forward substitution: L y = rhs.
    for j in range(m):
        y[j] /= lb[0, j]
        reach = min(w, m - 1 - j)
        if reach:
            y[j + 1 : j + 1 + reach] -= y[j] * lb[1 : reach + 1, j]
    # Back substitution: L^T x = y.
    for j in range(m - 1, -1, -1):
        reach = min(w, m - 1 - j)
        if reach:
            y[j] -= lb[1 : reach + 1, j] @ y[j + 1 : j + 1 + reach]
        y[j] /= lb[0, j]
    return y
