"""The direct solver facade used by the tuner and the reference algorithms.

Solves the interior Poisson system exactly for a given grid (whose boundary
ring carries Dirichlet data) and right-hand side.  Mirrors the role of
LAPACK ``DPBSV`` in the paper: by default every call factors and solves
(``cache_factorization=False``), exactly like DPBSV; caching the
factorization per grid size is available as an extension and is exercised by
an ablation benchmark.
"""

from __future__ import annotations

from typing import Literal

import numpy as np
from scipy.linalg import cho_solve_banded, cholesky_banded

from repro.grids.poisson import rhs_scale
from repro.linalg.band import (
    cholesky_banded_reference,
    poisson_band_matrix,
    solve_banded_reference,
)
from repro.linalg.blocktri import BlockTridiagonalCholesky
from repro.util.validation import check_square_grid

__all__ = ["DirectSolver", "build_interior_rhs", "scatter_interior"]

Backend = Literal["block", "lapack", "reference"]


def build_interior_rhs(x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Flat right-hand side over interior unknowns with boundary data folded in.

    For an interior point adjacent to the boundary, the stencil term
    -u_neighbor/h^2 is known data and moves to the right-hand side.
    """
    check_square_grid(x, "x")
    n = x.shape[0]
    inv_h2 = rhs_scale(n)
    rhs = b[1:-1, 1:-1].astype(np.float64, copy=True)
    rhs[0, :] += inv_h2 * x[0, 1:-1]
    rhs[-1, :] += inv_h2 * x[-1, 1:-1]
    rhs[:, 0] += inv_h2 * x[1:-1, 0]
    rhs[:, -1] += inv_h2 * x[1:-1, -1]
    return rhs.reshape(-1)


def scatter_interior(x: np.ndarray, flat: np.ndarray) -> np.ndarray:
    """Write the flat interior solution back into grid ``x`` in place."""
    n = x.shape[0]
    m = n - 2
    if flat.shape != (m * m,):
        raise ValueError(f"flat shape {flat.shape} != ({m * m},)")
    x[1:-1, 1:-1] = flat.reshape(m, m)
    return x


class _LapackFactor:
    """Banded Cholesky factor held in scipy/LAPACK lower band storage."""

    def __init__(self, n: int) -> None:
        ab = poisson_band_matrix(n)
        self._cb = cholesky_banded(ab, lower=True)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return cho_solve_banded((self._cb, True), rhs)


class _ReferenceFactor:
    """Factor produced by the scalar-loop reference implementation."""

    def __init__(self, n: int) -> None:
        self._lb = cholesky_banded_reference(poisson_band_matrix(n))

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return solve_banded_reference(self._lb, rhs)


_FACTORIES = {
    "block": BlockTridiagonalCholesky,
    "lapack": _LapackFactor,
    "reference": _ReferenceFactor,
}


class DirectSolver:
    """Exact interior solve of the discrete Poisson equation.

    Parameters
    ----------
    backend:
        ``"block"`` — our block-tridiagonal band Cholesky (default);
        ``"lapack"`` — scipy's binding of the LAPACK routine the paper used;
        ``"reference"`` — the scalar-loop specification (tiny grids only).
    cache_factorization:
        If True, keep one factorization per grid size and reuse it across
        calls.  False (default) re-factors on every call, matching DPBSV's
        cost profile assumed by the paper's cost comparisons.
    """

    def __init__(
        self,
        backend: Backend = "block",
        cache_factorization: bool = False,
    ) -> None:
        if backend not in _FACTORIES:
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.cache_factorization = cache_factorization
        self._cache: dict[int, object] = {}

    def _factor(self, n: int):
        if self.cache_factorization:
            factor = self._cache.get(n)
            if factor is None:
                factor = _FACTORIES[self.backend](n)
                self._cache[n] = factor
            return factor
        return _FACTORIES[self.backend](n)

    def solve(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Solve A u = b with Dirichlet data from ``x``'s boundary, in place.

        Overwrites the interior of ``x`` with the exact discrete solution
        and returns ``x``.
        """
        check_square_grid(x, "x")
        if b.shape != x.shape:
            raise ValueError(f"b shape {b.shape} != x shape {x.shape}")
        rhs = build_interior_rhs(x, b)
        flat = self._factor(x.shape[0]).solve(rhs)
        return scatter_interior(x, flat)

    def solved_copy(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Like :meth:`solve` but leaves ``x`` untouched."""
        return self.solve(x.copy(), b)
