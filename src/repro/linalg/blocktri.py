"""Block-tridiagonal Cholesky: the production band solver.

In natural row-major ordering the interior unknowns of an n x n grid form
w = n - 2 blocks of w unknowns each, and the Poisson matrix is block
tridiagonal:

    A = [ B  C^T            ]          B = (1/h^2) * tridiag(-1, 4, -1)
        [ C   B  C^T        ]          C = -(1/h^2) * I
        [      C   B  ...   ]

Band Cholesky then reduces to the block recurrence

    L_1 L_1^T = B
    E_i = C L_{i-1}^{-T}           (dense triangular solve)
    L_i L_i^T = B - E_i E_i^T      (dense Cholesky of a w x w block)

with all per-block work done by dense vectorized kernels, giving the same
O(m w^2) = O(N^4) arithmetic as LAPACK's DPBTRF but with a Python loop only
over the w grid rows.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from repro.grids.poisson import rhs_scale
from repro.linalg.band import bandwidth_of_grid

__all__ = ["BlockTridiagonalCholesky", "poisson_blocks"]


def poisson_blocks(n: int) -> tuple[np.ndarray, float]:
    """Diagonal block B (w x w dense) and off-diagonal scalar c of the
    block-tridiagonal Poisson matrix, where C = c * I."""
    w = bandwidth_of_grid(n)
    inv_h2 = rhs_scale(n)
    diag_block = np.zeros((w, w), dtype=np.float64)
    idx = np.arange(w)
    diag_block[idx, idx] = 4.0 * inv_h2
    diag_block[idx[:-1], idx[:-1] + 1] = -inv_h2
    diag_block[idx[:-1] + 1, idx[:-1]] = -inv_h2
    return diag_block, -inv_h2


class BlockTridiagonalCholesky:
    """Factorization of the Poisson matrix for one grid size, reusable across
    right-hand sides.

    Parameters
    ----------
    n:
        Grid size (2**k + 1).  The system solved is over the (n-2)^2
        interior unknowns in row-major order.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.w = bandwidth_of_grid(n)
        diag_block, off = poisson_blocks(n)
        w = self.w
        self._lower: list[np.ndarray] = []
        self._couplers: list[np.ndarray] = []
        schur = diag_block
        identity_scaled = off * np.eye(w)
        for i in range(w):
            lo = np.linalg.cholesky(schur)
            self._lower.append(lo)
            if i + 1 < w:
                # E = C L^{-T}  =>  E^T = L^{-1} C^T; C is a scalar multiple
                # of the identity so E^T = off * L^{-1}.
                e_t = solve_triangular(lo, identity_scaled, lower=True)
                e = e_t.T
                self._couplers.append(e)
                schur = diag_block - e @ e.T

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve A x = rhs for a flat rhs of length (n-2)^2."""
        w = self.w
        m = w * w
        if rhs.shape != (m,):
            raise ValueError(f"rhs shape {rhs.shape} != ({m},)")
        blocks = rhs.reshape(w, w)
        # Forward: L y = rhs, block by block.
        ys = np.empty_like(blocks)
        prev = None
        for i in range(w):
            t = blocks[i]
            if i > 0:
                t = t - self._couplers[i - 1] @ prev
            prev = solve_triangular(self._lower[i], t, lower=True)
            ys[i] = prev
        # Backward: L^T x = y.
        xs = np.empty_like(blocks)
        nxt = None
        for i in range(w - 1, -1, -1):
            t = ys[i]
            if i < w - 1:
                t = t - self._couplers[i].T @ nxt
            nxt = solve_triangular(self._lower[i], t, lower=True, trans="T")
            xs[i] = nxt
        return xs.reshape(m)

    def lower_band(self) -> np.ndarray:
        """Materialize the factor in LAPACK lower band storage.

        Exists so the tests can compare this block factorization entry-wise
        against the scalar reference and LAPACK.  The Cholesky factor of a
        band matrix keeps the bandwidth, and L's block row i holds [E_i L_i]
        in the block layout above.
        """
        w = self.w
        m = w * w
        lb = np.zeros((w + 1, m), dtype=np.float64)
        for i in range(w):
            base = i * w
            lo = self._lower[i]
            for jj in range(w):
                col = base + jj
                lb[0 : w - jj, col] = lo[jj:, jj]
                if i + 1 < w:
                    e_col = self._couplers[i][:, jj]
                    # Rows of block E_i sit w - jj .. 2w - jj - 1 below the
                    # diagonal of column ``col``; clip to the band.
                    for r in range(w):
                        off = (w - jj) + r
                        if off <= w:
                            lb[off, col] = e_col[r]
        return lb
