"""Sparse direct solves for d-dimensional per-axis-coefficient stencils.

The 2-D Poisson interior matrix is banded with bandwidth n-2, which the
band-Cholesky backends in :mod:`repro.linalg.direct` handle in O(N^2)
per solve.  In 3-D the natural-order bandwidth is (n-2)**2, so dense
band storage explodes (hundreds of MB at n = 33); the interior system is
instead assembled as a scipy.sparse matrix and factored once with
SuperLU.  Factors are owned by the caller (operators cache them per
instance), mirroring how :class:`~repro.operators.base.FivePointOperator`
owns its banded Cholesky factor.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.grids.poisson import rhs_scale
from repro.util.validation import check_cube_grid

__all__ = ["AxisStencilFactor", "axis_stencil_matrix", "solve_axis_stencil"]


def axis_stencil_matrix(n: int, coeffs: Sequence[float]):
    """Sparse CSC matrix of the interior per-axis stencil operator.

    The operator is ``(A u)_p = [sum_a c_a (2 u_p - u_{p-e_a} -
    u_{p+e_a})] / h**2`` over the (n-2)**d interior unknowns in row-major
    order, Dirichlet boundary eliminated.  Built as a Kronecker sum of
    1-D second-difference matrices, so the assembly is exact for any
    dimension.
    """
    from scipy import sparse

    m = n - 2
    if m < 1:
        raise ValueError(f"grid size {n} has no interior")
    inv_h2 = rhs_scale(n)
    ndim = len(coeffs)
    second_diff = sparse.diags(
        [-np.ones(m - 1), 2.0 * np.ones(m), -np.ones(m - 1)], offsets=(-1, 0, 1)
    )
    eye = sparse.identity(m, format="csr")
    total: Any = None
    for axis, c in enumerate(coeffs):
        term: Any = None
        for pos in range(ndim):
            factor = second_diff if pos == axis else eye
            term = factor if term is None else sparse.kron(term, factor, format="csr")
        term = float(c) * term
        total = term if total is None else total + term
    return (inv_h2 * total).tocsc()


class AxisStencilFactor:
    """SuperLU factorization of :func:`axis_stencil_matrix` (per size)."""

    def __init__(self, n: int, coeffs: Sequence[float]) -> None:
        from scipy.sparse.linalg import splu

        self.n = n
        self.coeffs = tuple(float(c) for c in coeffs)
        self._lu = splu(axis_stencil_matrix(n, self.coeffs))

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._lu.solve(rhs)


def solve_axis_stencil(
    x: np.ndarray,
    b: np.ndarray,
    coeffs: Sequence[float],
    factor: AxisStencilFactor,
) -> np.ndarray:
    """Exact interior solve with Dirichlet data from ``x``'s boundary shell.

    Overwrites the interior of ``x`` in place and returns it.  ``b`` is
    the full-grid right-hand side (boundary entries unused).
    """
    check_cube_grid(x, "x")
    if b.shape != x.shape:
        raise ValueError(f"b shape {b.shape} != x shape {x.shape}")
    n = x.shape[0]
    ndim = x.ndim
    if len(coeffs) != ndim:
        raise ValueError(f"need {ndim} coefficients, got {len(coeffs)}")
    if factor.n != n or factor.coeffs != tuple(float(c) for c in coeffs):
        raise ValueError("factor does not match this grid size / stencil")
    inv_h2 = rhs_scale(n)
    inner = (slice(1, -1),) * ndim
    rhs = b[inner].astype(np.float64, copy=True)
    # Fold the known boundary values adjacent to each face into the RHS.
    for axis, c in enumerate(coeffs):
        w = float(c) * inv_h2
        face_lo = tuple(0 if a == axis else slice(1, -1) for a in range(ndim))
        face_hi = tuple(-1 if a == axis else slice(1, -1) for a in range(ndim))
        layer_lo = tuple(0 if a == axis else slice(None) for a in range(ndim))
        layer_hi = tuple(-1 if a == axis else slice(None) for a in range(ndim))
        rhs[layer_lo] += w * x[face_lo]
        rhs[layer_hi] += w * x[face_hi]
    flat = factor.solve(rhs.reshape(-1))
    x[inner] = flat.reshape((n - 2,) * ndim)
    return x
