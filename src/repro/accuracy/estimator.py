"""Iterations-to-accuracy estimation on training data.

The autotuner "first computes the number of iterations needed for the SOR
and RECURSE_j choices before determining which is the fastest option to
attain accuracy p_i" (section 4.1).  This module runs a candidate step
repeatedly on each training instance and reports how many applications are
needed, aggregated across instances.
"""

from __future__ import annotations

import math
from typing import Callable, Literal, Sequence

import numpy as np

__all__ = ["InfeasibleCandidate", "iterations_to_accuracy"]

Aggregate = Literal["max", "median", "mean"]

StepFn = Callable[[np.ndarray, np.ndarray], None]


class InfeasibleCandidate(Exception):
    """A candidate could not reach the accuracy target within its budget."""

    def __init__(self, message: str, iterations_tried: int) -> None:
        super().__init__(message)
        self.iterations_tried = iterations_tried


def _aggregate(values: Sequence[int], how: Aggregate) -> int:
    if how == "max":
        return max(values)
    if how == "median":
        ordered = sorted(values)
        return ordered[(len(ordered) - 1) // 2 + (len(ordered) % 2 == 0)]
    if how == "mean":
        return math.ceil(sum(values) / len(values))
    raise ValueError(f"unknown aggregate {how!r}")


def iterations_to_accuracy(
    step: StepFn,
    starts: Sequence[tuple[np.ndarray, np.ndarray]],
    accuracy_fns: Sequence[Callable[[np.ndarray], float]],
    target: float,
    max_iters: int,
    aggregate: Aggregate = "max",
) -> int:
    """Iterations of ``step`` needed to reach ``target`` on every instance.

    ``starts`` holds (x, b) pairs; each ``x`` is mutated in place (callers
    pass fresh copies).  ``accuracy_fns[i]`` judges instance i.  Aggregation
    defaults to the worst case ("max") so a tuned plan meets its advertised
    accuracy on all training instances — the property the DP composition
    relies on.

    Raises :class:`InfeasibleCandidate` if any instance fails to converge
    within ``max_iters`` applications.
    """
    if len(starts) != len(accuracy_fns):
        raise ValueError("starts and accuracy_fns must align")
    if not starts:
        raise ValueError("need at least one training instance")
    if max_iters < 1:
        raise ValueError("max_iters must be >= 1")
    needed: list[int] = []
    for (x, b), acc in zip(starts, accuracy_fns):
        if acc(x) >= target:
            needed.append(0)
            continue
        count = None
        for it in range(1, max_iters + 1):
            step(x, b)
            if acc(x) >= target:
                count = it
                break
        if count is None:
            raise InfeasibleCandidate(
                f"candidate did not reach accuracy {target:g} within "
                f"{max_iters} iterations (n={x.shape[0]})",
                iterations_tried=max_iters,
            )
        needed.append(count)
    return _aggregate(needed, aggregate)
