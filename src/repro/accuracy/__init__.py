"""Accuracy machinery: the paper's common yardstick.

An algorithm's *accuracy level* on an input is the error-reduction ratio

    accuracy = ||x_in - x_opt||_2 / ||x_out - x_opt||_2

(section 2.2) — higher is better, and a target of 10^5 means "reduce the
error norm by five orders of magnitude".  Computing it requires the optimal
discrete solution x_opt, which :func:`reference_solution` provides (exact
direct solve at small sizes, deep-converged multigrid beyond).
"""

from repro.accuracy.judge import AccuracyJudge, accuracy_ratio
from repro.accuracy.reference import reference_solution, ReferenceSolutionCache
from repro.accuracy.estimator import (
    InfeasibleCandidate,
    iterations_to_accuracy,
)

__all__ = [
    "AccuracyJudge",
    "InfeasibleCandidate",
    "ReferenceSolutionCache",
    "accuracy_ratio",
    "iterations_to_accuracy",
    "reference_solution",
]
