"""The accuracy-level metric and a per-problem judge."""

from __future__ import annotations

import math

import numpy as np

from repro.grids.norms import error_norm

__all__ = ["AccuracyJudge", "accuracy_ratio"]


def accuracy_ratio(x_in: np.ndarray, x_out: np.ndarray, x_opt: np.ndarray) -> float:
    """||x_in - x_opt|| / ||x_out - x_opt|| with edge cases pinned down.

    * If the input error is zero the input was already optimal: any output
      at least as good gets +inf, anything worse gets 0.0 (it *lost*
      accuracy, the worst possible score).
    * If only the output error is zero the algorithm is perfect: +inf.
    """
    e_in = error_norm(x_in, x_opt)
    e_out = error_norm(x_out, x_opt)
    if e_in == 0.0:
        return math.inf if e_out == 0.0 else 0.0
    if e_out == 0.0:
        return math.inf
    return e_in / e_out


class AccuracyJudge:
    """Accuracy evaluation anchored to one problem instance.

    Holds the reference solution and the input error norm so repeated
    evaluations during iteration counting cost one norm each.
    """

    __slots__ = ("x_opt", "input_error")

    def __init__(self, x_in: np.ndarray, x_opt: np.ndarray) -> None:
        if x_in.shape != x_opt.shape:
            raise ValueError(f"shape mismatch: {x_in.shape} vs {x_opt.shape}")
        self.x_opt = x_opt
        self.input_error = error_norm(x_in, x_opt)

    def accuracy_of(self, x: np.ndarray) -> float:
        """Accuracy level of iterate ``x`` relative to the stored input."""
        e_out = error_norm(x, self.x_opt)
        if self.input_error == 0.0:
            return math.inf if e_out == 0.0 else 0.0
        if e_out == 0.0:
            return math.inf
        return self.input_error / e_out

    def achieved(self, x: np.ndarray, target: float) -> bool:
        """True if ``x`` meets accuracy level ``target``."""
        return self.accuracy_of(x) >= target
