"""Reference ("optimal") solutions x_opt for the accuracy metric.

Small grids are solved exactly with the banded direct solver; larger grids
with full multigrid followed by V cycles driven to residual stagnation
(machine precision).  The crossover keeps reference computation O(n) where
the direct solver's O(N^4) would dominate tuning time.

For accuracy targets up to 10^9 the reference must be ~10^-11 relative or
better; a stagnation-converged multigrid solution reaches the achievable
floor of double precision for this operator, which satisfies that with
orders of magnitude to spare (verified in tests/accuracy).
"""

from __future__ import annotations

import numpy as np

from repro.grids.norms import residual_norm
from repro.linalg.direct import DirectSolver
from repro.multigrid.cycles import full_multigrid_cycle, vcycle
from repro.operators.spec import shared_operator
from repro.workloads.problem import PoissonProblem

__all__ = ["ReferenceSolutionCache", "reference_solution"]

#: Largest grid size solved directly for references (2-D).
DIRECT_CUTOFF = 129

#: The 3-D analogue: sparse-LU references stay cheap up to 17**3
#: unknowns; beyond that the multigrid iteration is both faster and
#: lighter on memory.
DIRECT_CUTOFF_3D = 17

#: Largest grid size the stalled-cycle fallback may solve exactly.  The
#: banded factor is O(n^3) memory (~133 MB at 257); beyond this the
#: fallback would silently allocate gigabytes, so it raises instead.
FALLBACK_DIRECT_CUTOFF = 257

#: 3-D fallback bound: sparse-LU fill at 33**3 interior unknowns is the
#: largest factorization worth holding for a reference.
FALLBACK_DIRECT_CUTOFF_3D = 33

_direct = DirectSolver(backend="lapack", cache_factorization=True)


def _default_cutoff(ndim: int) -> int:
    return DIRECT_CUTOFF if ndim == 2 else DIRECT_CUTOFF_3D


def _fallback_cutoff(ndim: int) -> int:
    return FALLBACK_DIRECT_CUTOFF if ndim == 2 else FALLBACK_DIRECT_CUTOFF_3D


def reference_solution(
    problem: PoissonProblem, direct_cutoff: int | None = None
) -> np.ndarray:
    """Compute x_opt for ``problem`` (read-only array).

    Uses the exact solve for n <= direct_cutoff (``None`` picks the
    per-dimensionality default: 129 in 2-D, 17 in 3-D), otherwise one full
    multigrid cycle plus V cycles until the residual norm stagnates (no
    factor-of-2 improvement between cycles) — i.e. machine precision for
    the problem's operator.

    For non-default operators, stagnating *early* (standard V cycles
    barely contract, e.g. strong anisotropy) falls back to the exact
    solve up to :data:`FALLBACK_DIRECT_CUTOFF`, and raises beyond it: a
    reference that is not near machine precision would silently corrupt
    every accuracy judgment built on it, and the banded fallback above
    that size would allocate gigabytes.  The default Poisson path keeps
    the historical cycle iteration unconditionally (its floor is
    verified in tests/accuracy).
    """
    x = problem.initial_guess()
    b = problem.b
    ndim = b.ndim
    if direct_cutoff is None:
        direct_cutoff = _default_cutoff(ndim)
    op = shared_operator(problem.operator, problem.n)
    if problem.n <= direct_cutoff:
        # The shared LAPACK band solver only encodes the 2-D default
        # Poisson stencil; other operators own their factorizations.
        op.direct_solve(x, b, solver=_direct if ndim == 2 else None)
        x.setflags(write=False)
        return x
    scratch = np.zeros_like(x)
    default_poisson = problem.operator.is_default_poisson
    # Only the non-default quality gate reads the initial residual.
    initial = 0.0 if default_poisson else residual_norm(op.residual(x, b, out=scratch))
    full_multigrid_cycle(x, b, pre_sweeps=1, post_sweeps=1, operator=op)
    prev = residual_norm(op.residual(x, b, out=scratch))
    cur = prev
    weak_cycles = 0
    for _ in range(100):
        vcycle(x, b, pre_sweeps=1, post_sweeps=1, operator=op)
        cur = residual_norm(op.residual(x, b, out=scratch))
        if cur == 0.0:
            break
        # Poisson keeps the historical factor-of-2 stagnation rule
        # (byte-identical path, cycles contract ~0.1/cycle).  Other
        # operators may converge slowly but genuinely, so they iterate
        # while improving — but a sustained near-1 contraction ratio
        # means cycling is hopeless for this operator; bail to the
        # exact-solve fallback instead of burning the full 100 cycles.
        if default_poisson:
            if cur > 0.5 * prev:
                break
        else:
            if cur > prev:
                break
            weak_cycles = weak_cycles + 1 if cur > 0.9 * prev else 0
            if weak_cycles >= 3:
                break
        prev = cur
    if not default_poisson and cur > 1e-10 * initial:
        # Cycles stalled far from the achievable floor for this
        # operator; solve exactly (bounded), or fail loudly.
        if problem.n > _fallback_cutoff(ndim):
            raise RuntimeError(
                f"reference solution for operator "
                f"{problem.operator.canonical()!r} at n={problem.n} stalled at "
                f"residual ratio {cur / initial if initial else 0.0:.2e}, and the "
                f"exact fallback is limited to n <= {_fallback_cutoff(ndim)}"
            )
        x = problem.initial_guess()
        op.direct_solve(x, b)
    x.setflags(write=False)
    return x


class ReferenceSolutionCache:
    """Memoizes reference solutions per problem identity.

    Tuning evaluates many candidates on the same training instances; the
    reference for each instance is computed once.
    """

    def __init__(self, direct_cutoff: int | None = None) -> None:
        #: ``None`` resolves per problem dimensionality at compute time
        self.direct_cutoff = direct_cutoff
        # Keyed by id(); each entry pins the problem object so CPython can
        # never recycle an id while its cache entry is alive (id reuse after
        # garbage collection would silently return the wrong reference).
        self._store: dict[int, tuple[PoissonProblem, np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self._store)

    def get(self, problem: PoissonProblem) -> np.ndarray:
        key = id(problem)
        entry = self._store.get(key)
        if entry is None or entry[0] is not problem:
            x_opt = reference_solution(problem, self.direct_cutoff)
            self._store[key] = (problem, x_opt)
            return x_opt
        return entry[1]
