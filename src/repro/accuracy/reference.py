"""Reference ("optimal") solutions x_opt for the accuracy metric.

Small grids are solved exactly with the banded direct solver; larger grids
with full multigrid followed by V cycles driven to residual stagnation
(machine precision).  The crossover keeps reference computation O(n) where
the direct solver's O(N^4) would dominate tuning time.

For accuracy targets up to 10^9 the reference must be ~10^-11 relative or
better; a stagnation-converged multigrid solution reaches the achievable
floor of double precision for this operator, which satisfies that with
orders of magnitude to spare (verified in tests/accuracy).
"""

from __future__ import annotations

import numpy as np

from repro.grids.norms import residual_norm
from repro.grids.poisson import residual
from repro.linalg.direct import DirectSolver
from repro.multigrid.cycles import full_multigrid_cycle, vcycle
from repro.workloads.problem import PoissonProblem

__all__ = ["ReferenceSolutionCache", "reference_solution"]

#: Largest grid size solved directly for references.
DIRECT_CUTOFF = 129

_direct = DirectSolver(backend="lapack", cache_factorization=True)


def reference_solution(problem: PoissonProblem, direct_cutoff: int = DIRECT_CUTOFF) -> np.ndarray:
    """Compute x_opt for ``problem`` (read-only array).

    Uses the exact banded solve for n <= direct_cutoff, otherwise one full
    multigrid cycle plus V cycles until the residual norm stagnates (no
    factor-of-2 improvement between cycles) — i.e. machine precision for
    this operator.
    """
    x = problem.initial_guess()
    b = problem.b
    if problem.n <= direct_cutoff:
        _direct.solve(x, b)
        x.setflags(write=False)
        return x
    full_multigrid_cycle(x, b, pre_sweeps=1, post_sweeps=1)
    scratch = np.zeros_like(x)
    prev = residual_norm(residual(x, b, out=scratch))
    for _ in range(100):
        vcycle(x, b, pre_sweeps=1, post_sweeps=1)
        cur = residual_norm(residual(x, b, out=scratch))
        if cur == 0.0 or cur > 0.5 * prev:
            break
        prev = cur
    x.setflags(write=False)
    return x


class ReferenceSolutionCache:
    """Memoizes reference solutions per problem identity.

    Tuning evaluates many candidates on the same training instances; the
    reference for each instance is computed once.
    """

    def __init__(self, direct_cutoff: int = DIRECT_CUTOFF) -> None:
        self.direct_cutoff = direct_cutoff
        # Keyed by id(); each entry pins the problem object so CPython can
        # never recycle an id while its cache entry is alive (id reuse after
        # garbage collection would silently return the wrong reference).
        self._store: dict[int, tuple[PoissonProblem, np.ndarray]] = {}

    def __len__(self) -> int:
        return len(self._store)

    def get(self, problem: PoissonProblem) -> np.ndarray:
        key = id(problem)
        entry = self._store.get(key)
        if entry is None or entry[0] is not problem:
            x_opt = reference_solution(problem, self.direct_cutoff)
            self._store[key] = (problem, x_opt)
            return x_opt
        return entry[1]
