"""Machine models: op metering, analytic cost profiles, testbed presets,
and host calibration.

The paper demonstrates that optimal cycle shapes are machine-dependent
(section 4.3).  We reproduce the mechanism with cost models: solvers record
primitive operations into an :class:`OpMeter`, and a :class:`MachineProfile`
prices the meter for a given architecture.  Numerical behaviour (iteration
counts, accuracies) is architecture-independent, so one tuning run can be
re-priced per machine — deterministic and fast.
"""

from repro.machines.meter import NULL_METER, OpMeter, OPS
from repro.machines.profile import MachineProfile, OP_SHAPES, OpShape
from repro.machines.presets import (
    AMD_BARCELONA,
    HOST_FALLBACK,
    INTEL_HARPERTOWN,
    PRESETS,
    SUN_NIAGARA,
    get_preset,
)
from repro.machines.calibrate import calibrate_host_profile, measure_op_times

__all__ = [
    "AMD_BARCELONA",
    "HOST_FALLBACK",
    "INTEL_HARPERTOWN",
    "MachineProfile",
    "NULL_METER",
    "OP_SHAPES",
    "OPS",
    "OpMeter",
    "OpShape",
    "PRESETS",
    "SUN_NIAGARA",
    "calibrate_host_profile",
    "get_preset",
    "measure_op_times",
]
