"""Host-profile calibration from microbenchmarks.

Measures the actual cost of the library's primitive kernels on the running
machine at a few grid sizes and fits the two-parameter per-op model

    time(n) = overhead + points(n) * per_point_cost

used to build a :class:`~repro.machines.profile.MachineProfile` whose
pricing tracks this host.  The fit feeds the ``host`` timing mode: tuning
stays deterministic (prices, not noisy timings) while still reflecting the
machine the experiments run on.
"""

from __future__ import annotations

import numpy as np

from repro.grids.poisson import residual
from repro.grids.transfer import interpolate_bilinear, restrict_full_weighting
from repro.linalg.direct import DirectSolver
from repro.machines.profile import BackendCostModel, MachineProfile, OpShape
from repro.relax.sor import sor_redblack
from repro.util.timing import median_time
from repro.util.validation import size_of_level

__all__ = [
    "calibrate_backend_gains",
    "calibrate_host_profile",
    "measure_op_times",
]


def measure_op_times(
    levels: tuple[int, ...] = (4, 6, 8),
    repeats: int = 3,
) -> dict[str, list[tuple[int, float]]]:
    """Median wall-clock seconds for each primitive op at each level."""
    rng = np.random.default_rng(1234)
    samples: dict[str, list[tuple[int, float]]] = {
        "relax": [],
        "residual": [],
        "restrict": [],
        "interpolate": [],
        "direct": [],
    }
    direct = DirectSolver(backend="lapack", cache_factorization=False)
    for level in levels:
        n = size_of_level(level)
        u = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        scratch = np.zeros_like(u)
        coarse = rng.standard_normal(((n - 1) // 2 + 1, (n - 1) // 2 + 1))
        samples["relax"].append((n, median_time(lambda: sor_redblack(u, b, 1.15, 1), repeats)))
        samples["residual"].append(
            (n, median_time(lambda: residual(u, b, out=scratch), repeats))
        )
        samples["restrict"].append(
            (n, median_time(lambda: restrict_full_weighting(u), repeats))
        )
        samples["interpolate"].append(
            (n, median_time(lambda: interpolate_bilinear(coarse), repeats))
        )
        if n <= 129:
            samples["direct"].append(
                (n, median_time(lambda: direct.solve(u.copy(), b), repeats=max(1, repeats - 1)))
            )
    return samples


def _fit_linear(points: list[tuple[int, float]]) -> tuple[float, float]:
    """Least-squares fit time = overhead + per_point * n^2 (clipped at >= 0)."""
    xs = np.array([float(n) * float(n) for n, _ in points])
    ys = np.array([t for _, t in points])
    a = np.vstack([np.ones_like(xs), xs]).T
    (overhead, per_point), *_ = np.linalg.lstsq(a, ys, rcond=None)
    return max(float(overhead), 0.0), max(float(per_point), 1e-12)


def calibrate_backend_gains(
    backend: str = "auto",
    levels: tuple[int, ...] = (5, 7),
    repeats: int = 3,
) -> BackendCostModel | None:
    """Measured per-op gains of an accelerated kernel backend on this host.

    Times the backend's bound kernels against the NumPy reference on the
    Poisson operator and returns a :class:`BackendCostModel` suitable for
    ``MachineProfile.backend_costs``; ``None`` when the backend resolves to
    ``numpy`` or cannot run here.  This is the measured alternative to
    :data:`~repro.machines.profile.DEFAULT_BACKEND_GAINS` — note that
    attaching it to a profile changes the profile's fingerprint.
    """
    from repro.kernels import get_backend, resolve_backend
    from repro.operators import shared_operator

    name = resolve_backend(backend)
    if name == "numpy":
        return None
    accel = get_backend(name)
    if not accel.available():
        return None
    accel.warmup()
    reference = get_backend("numpy")
    rng = np.random.default_rng(1234)
    ratios: dict[str, list[float]] = {
        "relax": [], "residual": [], "restrict": [], "interpolate": []
    }
    for level in levels:
        n = size_of_level(level)
        op = shared_operator("poisson", n)
        if not accel.supports(op):
            continue
        bound = accel.bind(op)
        if bound is None:
            continue
        ref = reference.bind(op)
        u = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        scratch = np.zeros_like(u)
        coarse = rng.standard_normal(((n - 1) // 2 + 1,) * 2)
        probes = {
            "relax": lambda k: k.sor_sweeps(u, b, 1.15, 1),
            "residual": lambda k: k.residual(u, b, out=scratch),
            "restrict": lambda k: k.restrict(u),
            "interpolate": lambda k: k.interpolate_correction(u, coarse),
        }
        for op_name, probe in probes.items():
            t_ref = median_time(lambda: probe(ref), repeats)
            t_acc = median_time(lambda: probe(bound), repeats)
            if t_ref > 0.0 and t_acc > 0.0:
                ratios[op_name].append(t_ref / t_acc)
    gains = {
        op_name: max(float(np.median(r)), 1.0)
        for op_name, r in ratios.items()
        if r
    }
    if not gains:
        return None
    return BackendCostModel(gains=gains, op_overhead_scale=2.0)


def calibrate_host_profile(
    levels: tuple[int, ...] = (4, 6, 8),
    repeats: int = 3,
) -> MachineProfile:
    """Build a single-thread profile whose op prices match this host.

    The fitted per-op costs are encoded by giving every op a bytes-dominated
    shape against a synthetic 1-byte/s-normalized bandwidth, so
    ``stencil_time`` reproduces ``overhead + n^2 * per_point`` exactly for
    in-cache and out-of-cache sizes alike.
    """
    samples = measure_op_times(levels, repeats)
    fits = {op: _fit_linear(pts) for op, pts in samples.items() if op != "direct" and pts}
    overhead = float(np.median([f[0] for f in fits.values()]))
    shapes = {
        op: OpShape(flops_per_point=0.0, bytes_per_point=per_point, barriers=1)
        for op, (_, per_point) in fits.items()
    }
    shapes["norm"] = OpShape(0.0, fits["residual"][1] * 0.25)
    shapes["copy"] = OpShape(0.0, fits["residual"][1] * 0.5)
    # Dense rate from the measured direct solves: flops ~ (n-2)^4.
    dense_rate = 1.0e9
    if samples["direct"]:
        rates = [((n - 2) ** 4 + 6.0 * (n - 2) ** 3) / t for n, t in samples["direct"] if t > 0]
        if rates:
            dense_rate = float(np.median(rates))
    return MachineProfile(
        name="host-calibrated",
        cores=1,
        flop_rate=dense_rate,
        mem_bw=1.0,  # normalized: shapes carry seconds-per-point directly
        single_thread_bw_frac=1.0,
        cache_size=float("inf"),
        cache_bw=1.0,
        op_overhead=overhead,
        sync_overhead=0.0,
        dense_efficiency=1.0,
        direct_overhead=0.0,
        direct_includes_memory=False,
        op_shapes=shapes,
        description="profile fitted from microbenchmarks on the current host",
    )
