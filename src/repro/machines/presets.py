"""Calibrated cost-model presets for the paper's three testbeds.

The parameters are drawn from the published microarchitectural
characteristics of each machine (clock, SIMD width, FSB vs integrated
memory controller, cache sizes, thread counts) and tuned so the *relative*
cost landscape — dense compute vs streaming bandwidth vs per-op overhead —
reflects each design.  Absolute times are order-of-magnitude only; the
reproduction targets the paper's qualitative claims (who wins, where the
direct cutoff lands, how shapes differ across machines), not its wall-clock
values.

* **Intel Xeon E7340 (Harpertown testbed)** — 2 sockets x 4 cores at
  ~2.4 GHz with strong SSE dense throughput and large shared L2, but a
  front-side bus: high flop rate, modest memory bandwidth.  Dense direct
  solves are comparatively cheap, so tuned cycles take the direct shortcut
  at a *larger* grid (paper: level 5 vs level 4 elsewhere; Fig 14).
* **AMD Opteron 2356 (Barcelona)** — 2 x 4 cores at ~2.3 GHz, integrated
  memory controllers (better bandwidth/core), smaller per-core dense
  advantage: relaxations at medium grids are relatively cheap, direct
  relatively pricier, pushing the direct call one level coarser.
* **Sun Fire T200 (Niagara)** — 8 in-order cores x 4 threads, ~1.2 GHz,
  one shared FPU per core: very low per-thread FLOP rate, high aggregate
  throughput, cheap on-chip synchronization.  Dense factorization is
  painful, favouring deep recursion and extra mid-level relaxation.
"""

from __future__ import annotations

from repro.machines.profile import MachineProfile

__all__ = [
    "AMD_BARCELONA",
    "HOST_FALLBACK",
    "INTEL_HARPERTOWN",
    "PRESETS",
    "SUN_NIAGARA",
    "get_preset",
]

INTEL_HARPERTOWN = MachineProfile(
    name="intel-harpertown",
    cores=8,
    flop_rate=6.0e9,
    mem_bw=8.0e9,
    single_thread_bw_frac=0.45,
    cache_size=6.0 * 2**20,
    cache_bw=48.0e9,
    op_overhead=2.0e-6,
    sync_overhead=7.0e-6,
    dense_efficiency=0.80,
    direct_overhead=4.0e-6,
    description="2x quad-core Intel Xeon (Harpertown-class testbed): strong "
    "SSE dense compute, FSB-limited memory bandwidth",
)

AMD_BARCELONA = MachineProfile(
    name="amd-barcelona",
    cores=8,
    flop_rate=4.2e9,
    mem_bw=17.0e9,
    single_thread_bw_frac=0.30,
    cache_size=2.5 * 2**20,
    cache_bw=34.0e9,
    op_overhead=2.2e-6,
    sync_overhead=6.0e-6,
    dense_efficiency=0.65,
    direct_overhead=4.0e-6,
    description="2x quad-core AMD Opteron 2356 (Barcelona): integrated "
    "memory controllers, weaker dense kernels than the Xeon",
)

SUN_NIAGARA = MachineProfile(
    name="sun-niagara",
    cores=32,
    flop_rate=0.35e9,
    mem_bw=20.0e9,
    single_thread_bw_frac=0.08,
    cache_size=3.0 * 2**20,
    cache_bw=22.0e9,
    op_overhead=5.0e-6,
    sync_overhead=2.5e-6,
    dense_efficiency=0.45,
    direct_overhead=8.0e-6,
    description="Sun Fire T200 (Niagara): 32 hardware threads, one shared "
    "FPU per core — high throughput, very weak serial dense compute",
)

#: Analytic stand-in for the container running the reproduction; the real
#: host profile comes from :mod:`repro.machines.calibrate`.
HOST_FALLBACK = MachineProfile(
    name="host-fallback",
    cores=1,
    flop_rate=2.0e9,
    mem_bw=10.0e9,
    single_thread_bw_frac=1.0,
    cache_size=8.0 * 2**20,
    cache_bw=40.0e9,
    op_overhead=5.0e-6,
    sync_overhead=5.0e-6,
    dense_efficiency=0.6,
    direct_overhead=10.0e-6,
    description="single-core analytic fallback for the reproduction host",
)

PRESETS: dict[str, MachineProfile] = {
    "intel": INTEL_HARPERTOWN,
    "intel-harpertown": INTEL_HARPERTOWN,
    "amd": AMD_BARCELONA,
    "amd-barcelona": AMD_BARCELONA,
    "sun": SUN_NIAGARA,
    "sun-niagara": SUN_NIAGARA,
    "host": HOST_FALLBACK,
    "host-fallback": HOST_FALLBACK,
}


def get_preset(name: str) -> MachineProfile:
    """Look up a preset by name.

    Raises :class:`ValueError` naming the valid presets on a miss, so CLI
    users typing ``--machine hots`` see what ``--machine`` actually accepts.
    """
    profile = PRESETS.get(name)
    if profile is None:
        valid = ", ".join(sorted(set(PRESETS)))
        raise ValueError(
            f"unknown machine preset {name!r}; valid presets are: {valid}"
        )
    return profile
