"""Analytic machine cost models.

A :class:`MachineProfile` prices the primitive operations recorded in an
:class:`~repro.machines.meter.OpMeter`, producing a deterministic simulated
runtime.  The model captures the effects the paper's results hinge on:

* fixed per-operation overhead (recursion to tiny grids is not free, which
  is why shortcut choices exist);
* a roofline-style per-point cost: max(compute, memory) with a memory rate
  that depends on whether the working set fits in cache;
* dense-kernel cost for the band-Cholesky direct solve, scaling O(N^4) in
  grid side length, so the direct/iterative crossover moves with the
  machine's dense-compute strength;
* a simple shared-bandwidth + barrier parallel model, so the same plan
  prices differently at different thread counts (Figure 9) and on machines
  with many weak threads vs few strong ones (Figures 10-14).

Stencil-op arithmetic/traffic constants live in :data:`OP_SHAPES`; they are
fixed across machines (the code executed is the same) while the rates and
overheads vary per machine.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace

from repro.machines.meter import OpMeter

__all__ = [
    "BackendCostModel",
    "DEFAULT_BACKEND_GAINS",
    "MachineProfile",
    "OP_SHAPES",
    "OpShape",
]


@dataclass(frozen=True)
class OpShape:
    """Machine-independent footprint of one primitive op at grid size n.

    ``flops_per_point`` / ``bytes_per_point`` are per fine-grid point
    (n^2 points); ``barriers`` is the number of synchronization points a
    parallel execution of the op requires.
    """

    flops_per_point: float
    bytes_per_point: float
    barriers: int = 1

    def flops(self, n: int) -> float:
        return self.flops_per_point * float(n) * float(n)

    def bytes(self, n: int) -> float:
        return self.bytes_per_point * float(n) * float(n)


#: Red-black SOR touches u five times and b once per point per colour pair;
#: transfers touch the fine grid once and the coarse grid once.
OP_SHAPES: dict[str, OpShape] = {
    "relax": OpShape(flops_per_point=12.0, bytes_per_point=56.0, barriers=2),
    "residual": OpShape(flops_per_point=7.0, bytes_per_point=40.0),
    "restrict": OpShape(flops_per_point=11.0, bytes_per_point=18.0),
    "interpolate": OpShape(flops_per_point=6.0, bytes_per_point=28.0),
    "norm": OpShape(flops_per_point=2.0, bytes_per_point=8.0),
    "copy": OpShape(flops_per_point=0.0, bytes_per_point=16.0),
}

#: Per-point footprints of the 3-D stencil ops (7-point sweeps, 27-point
#: tensor-product transfers).  These are fixed module constants — they are
#: deliberately *not* part of :meth:`MachineProfile.to_dict`, so profile
#: fingerprints (and every plan stored under them) are unchanged by the
#: 3-D extension; machines still differentiate 3-D costs through their
#: rates, caches, and overheads.
OP_SHAPES_3D: dict[str, OpShape] = {
    "relax": OpShape(flops_per_point=16.0, bytes_per_point=72.0, barriers=2),
    "residual": OpShape(flops_per_point=9.0, bytes_per_point=48.0),
    "restrict": OpShape(flops_per_point=15.0, bytes_per_point=18.0),
    "interpolate": OpShape(flops_per_point=8.0, bytes_per_point=30.0),
    "norm": OpShape(flops_per_point=2.0, bytes_per_point=8.0),
    "copy": OpShape(flops_per_point=0.0, bytes_per_point=16.0),
}


@dataclass(frozen=True)
class BackendCostModel:
    """How an accelerated kernel backend re-prices the stencil ops.

    ``gains`` maps an op family (``relax``/``residual``/``restrict``/
    ``interpolate``; 2-D and 3-D share a family) to the speedup over the
    NumPy reference on the roofline term; ``op_overhead_scale`` scales the
    fixed per-op dispatch cost — accelerated backends pay *more* dispatch
    (ctypes / JIT boundary crossing), which is exactly why tuned plans mix
    backends: tiny coarse grids stay on NumPy while fine grids accelerate.
    """

    gains: dict[str, float] = field(default_factory=dict)
    op_overhead_scale: float = 1.0

    def gain_for(self, op_family: str) -> float:
        return float(self.gains.get(op_family, 1.0))

    def to_dict(self) -> dict:
        return {
            "gains": {op: float(g) for op, g in sorted(self.gains.items())},
            "op_overhead_scale": self.op_overhead_scale,
        }


#: Fallback per-backend cost models, used when a profile carries no
#: calibrated ``backend_costs`` entry for a backend.  Numbers come from
#: microbenchmarks of the scalar C kernels vs the vectorized NumPy loops
#: (see ``benchmarks/bench_kernels.py``); they only need the right *shape*
#: — accelerated work is several times cheaper, dispatch is costlier — for
#: the DP to place backends sensibly per level.
DEFAULT_BACKEND_GAINS: dict[str, BackendCostModel] = {
    "cnative": BackendCostModel(
        gains={"relax": 6.0, "residual": 5.0, "restrict": 5.0, "interpolate": 4.0},
        op_overhead_scale=2.5,
    ),
    "numba": BackendCostModel(
        gains={"relax": 7.0, "residual": 5.5, "restrict": 4.5, "interpolate": 3.5},
        op_overhead_scale=3.0,
    ),
}


#: Identity model: no gain, no extra overhead (numpy / unknown backends).
_IDENTITY_BACKEND = BackendCostModel()


@dataclass(frozen=True)
class MachineProfile:
    """Cost parameters of one target machine."""

    name: str
    cores: int
    #: sustained streaming FLOP rate of one thread (flops/s)
    flop_rate: float
    #: total off-chip memory bandwidth (bytes/s)
    mem_bw: float
    #: fraction of ``mem_bw`` one thread can drive alone
    single_thread_bw_frac: float
    #: last-level cache capacity (bytes) and its bandwidth (bytes/s, per chip)
    cache_size: float
    cache_bw: float
    #: fixed dispatch overhead per primitive op (s)
    op_overhead: float
    #: cost of one parallel barrier at 2 threads (grows log2 with threads)
    sync_overhead: float
    #: efficiency of dense blocked kernels (band Cholesky) vs ``flop_rate``
    dense_efficiency: float
    #: extra fixed cost per direct-solve call (allocation, setup)
    direct_overhead: float = 0.0
    #: working-set bytes per grid point for cache-tier decisions (three
    #: operand grids in the typical stencil op)
    working_set_factor: float = 24.0
    #: include the factor-streaming memory term in direct-solve pricing.
    #: Calibrated host profiles fold memory effects into the fitted dense
    #: rate and turn this off.
    direct_includes_memory: bool = True
    description: str = ""
    op_shapes: dict[str, OpShape] = field(default_factory=lambda: dict(OP_SHAPES))
    #: calibrated per-backend cost models; empty means "use
    #: :data:`DEFAULT_BACKEND_GAINS`" and keeps the fingerprint unchanged
    backend_costs: dict[str, BackendCostModel] = field(default_factory=dict)

    def with_threads(self, threads: int) -> "MachineProfile":
        """A copy of this profile restricted to ``threads`` worker threads."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        return replace(self, cores=threads, name=f"{self.name}@{threads}t")

    # -- identity ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready dict of every cost-relevant parameter.

        Display-only fields (``name``, ``description``) are excluded so two
        profiles with identical cost landscapes serialize identically; the
        persistent tuning store keys plans by this content, not by label.
        """
        payload = {
            "cores": self.cores,
            "flop_rate": self.flop_rate,
            "mem_bw": self.mem_bw,
            "single_thread_bw_frac": self.single_thread_bw_frac,
            "cache_size": self.cache_size,
            "cache_bw": self.cache_bw,
            "op_overhead": self.op_overhead,
            "sync_overhead": self.sync_overhead,
            "dense_efficiency": self.dense_efficiency,
            "direct_overhead": self.direct_overhead,
            "working_set_factor": self.working_set_factor,
            "direct_includes_memory": self.direct_includes_memory,
            "op_shapes": {
                op: [s.flops_per_point, s.bytes_per_point, s.barriers]
                for op, s in sorted(self.op_shapes.items())
            },
        }
        # Only serialized when calibrated: default-gain profiles keep the
        # exact pre-backend fingerprint, so every stored plan stays valid.
        if self.backend_costs:
            payload["backend_costs"] = {
                name: model.to_dict()
                for name, model in sorted(self.backend_costs.items())
            }
        return payload

    @classmethod
    def from_dict(cls, data: dict, name: str = "profile") -> "MachineProfile":
        """Rebuild a profile from its :meth:`to_dict` payload.

        The inverse of :meth:`to_dict` up to display fields (``name`` is
        caller-supplied, ``description`` empty), so a round-tripped
        profile has the same :meth:`fingerprint` — the property the
        store's serialized model artifacts rely on.
        """
        op_shapes = {
            op: OpShape(
                flops_per_point=float(s[0]),
                bytes_per_point=float(s[1]),
                barriers=int(s[2]),
            )
            for op, s in data.get("op_shapes", {}).items()
        }
        backend_costs = {
            backend: BackendCostModel(
                gains=dict(model.get("gains", {})),
                op_overhead_scale=float(model.get("op_overhead_scale", 1.0)),
            )
            for backend, model in data.get("backend_costs", {}).items()
        }
        return cls(
            name=name,
            cores=int(data["cores"]),
            flop_rate=float(data["flop_rate"]),
            mem_bw=float(data["mem_bw"]),
            single_thread_bw_frac=float(data["single_thread_bw_frac"]),
            cache_size=float(data["cache_size"]),
            cache_bw=float(data["cache_bw"]),
            op_overhead=float(data["op_overhead"]),
            sync_overhead=float(data["sync_overhead"]),
            dense_efficiency=float(data["dense_efficiency"]),
            direct_overhead=float(data.get("direct_overhead", 0.0)),
            working_set_factor=float(data.get("working_set_factor", 24.0)),
            direct_includes_memory=bool(data.get("direct_includes_memory", True)),
            op_shapes=op_shapes or dict(OP_SHAPES),
            backend_costs=backend_costs,
        )

    def fingerprint(self) -> str:
        """Stable content hash of the cost model (machine identity).

        Two :class:`MachineProfile` instances with the same parameters get
        the same fingerprint regardless of how they were constructed or
        named, so tuned plans stored under a fingerprint are shared across
        processes and hosts with equivalent cost landscapes.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return "mp-" + hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # -- memory hierarchy -------------------------------------------------

    def _mem_rate(self, working_set: float, threads: int) -> float:
        """Effective bytes/s for a streaming op with the given working set."""
        if working_set <= self.cache_size:
            base = self.cache_bw
            frac = max(self.single_thread_bw_frac, 1.0 / max(self.cores, 1))
        else:
            base = self.mem_bw
            frac = self.single_thread_bw_frac
        return base * min(1.0, frac * threads)

    def _barrier_cost(self, threads: int, barriers: int) -> float:
        if threads <= 1 or barriers <= 0:
            return 0.0
        return self.sync_overhead * barriers * math.log2(threads + 1)

    # -- op pricing -------------------------------------------------------

    def _stencil_points_time(
        self, shape: OpShape, points: float, threads: int | None
    ) -> float:
        """Roofline time of one grid-local op touching ``points`` points
        (shared by the 2-D and 3-D pricing paths so the threading and
        memory model can never drift between dimensions)."""
        p = self.cores if threads is None else min(threads, self.cores)
        # Threads stop helping once per-thread chunks are trivially small.
        usable = max(1, min(p, int(points / 512) or 1))
        compute = shape.flops_per_point * points / (self.flop_rate * usable)
        working_set = points * self.working_set_factor
        memory = shape.bytes_per_point * points / self._mem_rate(working_set, usable)
        return max(compute, memory) + self.op_overhead + self._barrier_cost(usable, shape.barriers)

    def stencil_time(self, op: str, n: int, threads: int | None = None) -> float:
        """Time of one grid-local op (relax/residual/transfer/...) at size n."""
        shape = self.op_shapes.get(op)
        if shape is None:
            raise KeyError(f"no shape for op {op!r}")
        return self._stencil_points_time(shape, float(n) * float(n), threads)

    def stencil_time_3d(
        self, base_op: str, n: int, threads: int | None = None
    ) -> float:
        """Time of one 3-D grid-local op at side length n (n**3 points)."""
        shape = OP_SHAPES_3D.get(base_op)
        if shape is None:
            raise KeyError(f"no 3-D shape for op {base_op!r}")
        return self._stencil_points_time(shape, float(n) ** 3, threads)

    def direct_time(self, n: int, threads: int | None = None, cached: bool = False) -> float:
        """Time of a band-Cholesky direct solve at grid size n.

        ``cached=True`` prices only the banded triangular solves (the
        factorization-reuse extension); the default prices factor + solve,
        matching DPBSV.  The dense factorization is modelled as serial —
        the paper's LAPACK calls run on one thread inside a parallel
        program.
        """
        w = float(n - 2)
        solve_flops = 4.0 * w**3
        factor_flops = 0.0 if cached else w**4 + 2.0 * w**3
        rate = self.flop_rate * self.dense_efficiency
        t = (factor_flops + solve_flops) / rate
        if self.direct_includes_memory:
            # Banded backsolves stream the factor from memory once.
            t += 8.0 * w**3 / self._mem_rate(8.0 * w**3, 1)
        return t + self.op_overhead + self.direct_overhead

    def direct3d_time(
        self, n: int, threads: int | None = None, cached: bool = False
    ) -> float:
        """Time of a sparse-LU direct solve on the (n-2)**3 interior system.

        Sparse factorization of a 3-D grid Laplacian costs O(N^2) flops
        and the triangular solves O(N^(4/3)) for N interior unknowns
        (nested-dissection fill); ``cached=True`` prices only the solves.
        Modelled as serial, like the 2-D dense factorization.
        """
        unknowns = float(n - 2) ** 3
        solve_flops = 80.0 * unknowns ** (4.0 / 3.0)
        factor_flops = 0.0 if cached else 10.0 * unknowns * unknowns
        rate = self.flop_rate * self.dense_efficiency
        t = (factor_flops + solve_flops) / rate
        if self.direct_includes_memory:
            # The triangular solves stream the factor from memory once.
            factor_bytes = 8.0 * 8.0 * unknowns ** (4.0 / 3.0)
            t += factor_bytes / self._mem_rate(factor_bytes, 1)
        return t + self.op_overhead + self.direct_overhead

    def backend_model(self, backend: str) -> BackendCostModel:
        """The cost model for an accelerated backend (calibrated or default).

        Unknown backends (and ``numpy`` itself) price as the identity model,
        so a plan qualified for a backend this profile knows nothing about
        degrades to reference pricing rather than failing.
        """
        if backend in self.backend_costs:
            return self.backend_costs[backend]
        return DEFAULT_BACKEND_GAINS.get(backend, _IDENTITY_BACKEND)

    def _backend_op_time(
        self, base: str, backend: str, n: int, threads: int | None
    ) -> float:
        """Price ``base`` executed by an accelerated kernel backend.

        The roofline/barrier term shrinks by the backend's measured gain;
        the fixed dispatch overhead *grows* by its overhead scale.  At tiny
        grid sizes the overhead term dominates and the accelerated op
        prices above the reference one — the DP then keeps coarse levels
        on NumPy, which matches what wall-clock measurement shows.
        """
        model = self.backend_model(backend)
        family = base[:-2] if base.endswith("3d") else base
        reference = self.op_time(base, n, threads)
        work = max(reference - self.op_overhead, 0.0)
        return (
            work / model.gain_for(family)
            + self.op_overhead * model.op_overhead_scale
        )

    def op_time(self, op: str, n: int, threads: int | None = None) -> float:
        """Time of one occurrence of ``op`` at size ``n``.

        ``op`` may carry a kernel-backend qualifier (``"relax@cnative"``);
        see :meth:`_backend_op_time`.
        """
        if "@" in op:
            base, _, backend = op.partition("@")
            return self._backend_op_time(base, backend, n, threads)
        if op == "direct":
            return self.direct_time(n, threads, cached=False)
        if op == "direct_solve":
            return self.direct_time(n, threads, cached=True)
        if op == "direct3d":
            return self.direct3d_time(n, threads, cached=False)
        if op == "direct_solve3d":
            return self.direct3d_time(n, threads, cached=True)
        if op.endswith("3d"):
            return self.stencil_time_3d(op[:-2], n, threads)
        return self.stencil_time(op, n, threads)

    def price(self, meter: OpMeter, threads: int | None = None) -> float:
        """Total simulated seconds for all ops recorded in ``meter``."""
        total = 0.0
        for (op, n), count in meter.items():
            total += count * self.op_time(op, n, threads)
        return total
