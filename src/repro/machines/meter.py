"""Operation metering.

Solvers record *what* they did (which primitive op, at which grid size, how
many times) into an :class:`OpMeter`.  A :class:`~repro.machines.profile.
MachineProfile` then prices the meter, yielding a deterministic simulated
runtime for any target architecture.  This separation is what lets a single
numerical tuning run be re-priced for Intel/AMD/Sun profiles: the numerics
(and therefore iteration counts) are architecture-independent, while the
cost landscape is not.

This module is dependency-free so every solver layer can import it without
cycles.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

__all__ = [
    "ACCELERABLE_OPS",
    "NULL_METER",
    "OpMeter",
    "OPS",
    "OPS_2D",
    "backend_op",
    "base_op",
    "dim_op",
]

#: Primitive operations on 2-D grids.  ``n`` is always the fine-grid
#: side length the op touches.
OPS_2D = (
    "relax",  # one red-black SOR (or Jacobi) sweep on an n x n grid
    "residual",  # residual computation on an n x n grid
    "restrict",  # full-weighting restriction from an n x n grid
    "interpolate",  # bilinear interpolation + correction add onto n x n
    "direct",  # band-Cholesky factor + solve at size n (DPBSV-style)
    "direct_solve",  # banded triangular solves only (cached factorization)
    "norm",  # interior norm on an n x n grid
    "copy",  # grid copy / zero-fill at size n
)

#: The 3-D analogues (7-point sweeps, 27-point transfers, sparse-LU
#: direct solves) touch n**3 points at side length n, so they are
#: distinct ops: the cost model prices them with 3-D point counts.
OPS_3D = tuple(f"{op}3d" for op in OPS_2D)

#: Every primitive operation the cost model understands.
OPS = OPS_2D + OPS_3D


#: Stencil ops a non-default kernel backend can accelerate.  Direct
#: solves, norms, and copies always run the reference implementation, so
#: they are never backend-qualified.
ACCELERABLE_OPS = ("relax", "residual", "restrict", "interpolate")


def dim_op(op: str, ndim: int) -> str:
    """The meter op name for a base op at a grid dimensionality.

    2-D keeps the historical bare names (stored plans and meters stay
    byte-identical); 3-D appends the ``3d`` suffix.
    """
    if ndim == 2:
        return op
    if ndim == 3:
        return op + "3d"
    raise ValueError(f"no op vocabulary for ndim={ndim}")


def base_op(op: str) -> str:
    """Strip a backend qualifier: ``"relax@cnative"`` -> ``"relax"``."""
    base, _, _ = op.partition("@")
    return base


def backend_op(op: str, backend: str) -> str:
    """Qualify a meter op with the kernel backend executing it.

    The default ``numpy`` backend keeps the historical bare names (stored
    meters and plan prices stay byte-identical), as do ops no backend
    accelerates; everything else gains an ``@backend`` suffix so the cost
    model can price the accelerated kernel.
    """
    if not backend or backend == "numpy":
        return op
    family = op[:-2] if op.endswith("3d") else op
    if family not in ACCELERABLE_OPS:
        return op
    return f"{op}@{backend}"


def _validate_op(op: str) -> None:
    if op in OPS:
        return
    base, sep, backend = op.partition("@")
    family = base[:-2] if base.endswith("3d") else base
    if sep and backend and base in OPS and family in ACCELERABLE_OPS:
        return
    raise ValueError(f"unknown op {op!r}; known: {OPS} (optionally '@backend')")


class OpMeter:
    """Multiset of (op, n) events with merge and pricing hooks."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Counter[tuple[str, int]] = Counter()

    def charge(self, op: str, n: int, times: int = 1) -> None:
        """Record ``times`` occurrences of ``op`` at grid size ``n``.

        ``op`` is either a bare primitive or a backend-qualified stencil
        op like ``"relax@cnative"`` (see :func:`backend_op`).
        """
        _validate_op(op)
        if times:
            self.counts[(op, n)] += times

    def merge(self, other: "OpMeter", times: int = 1) -> None:
        """Fold ``times`` copies of ``other``'s counts into this meter."""
        if times == 1:
            self.counts.update(other.counts)
        elif times > 1:
            for key, cnt in other.counts.items():
                self.counts[key] += cnt * times

    def scaled(self, times: int) -> "OpMeter":
        """A new meter holding ``times`` copies of these counts."""
        out = OpMeter()
        out.merge(self, times)
        return out

    def total(self, op: str) -> int:
        """Total count of ``op`` across all sizes (any backend qualifier)."""
        return sum(
            cnt for (name, _), cnt in self.counts.items() if base_op(name) == op
        )

    def items(self) -> Iterator[tuple[tuple[str, int], int]]:
        return iter(self.counts.items())

    def __len__(self) -> int:
        return len(self.counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OpMeter):
            return NotImplemented
        return self.counts == other.counts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(f"{op}@{n}x{cnt}" for (op, n), cnt in sorted(self.counts.items()))
        return f"OpMeter({body})"


class _NullMeter(OpMeter):
    """Meter that discards charges; the default when callers don't care."""

    def charge(self, op: str, n: int, times: int = 1) -> None:  # noqa: D102
        _validate_op(op)

    def merge(self, other: OpMeter, times: int = 1) -> None:  # noqa: D102
        pass


#: Shared do-nothing meter instance.
NULL_METER = _NullMeter()
