"""Standard multigrid cycles (the algorithmically static baselines).

All cycles operate in correction form below the top level: the coarse
problem is A_c e = r_c with zero boundary and zero initial guess, so
transfers of corrections never touch Dirichlet data.

Every cycle takes an optional ``operator`` — any
:class:`~repro.operators.base.StencilOperator` bound to the input's
grid size; coarse levels rediscretize via ``operator.coarsen()``.  The
default is the shared constant-coefficient Poisson operator, whose
methods delegate to the original kernels, so the default path is
byte-identical to the historical Poisson-only implementation.

The ``direct=`` solver applies only to the Poisson operator (it encodes
the constant stencil); generic operators own their banded-Cholesky
factorizations and ignore it.
"""

from __future__ import annotations

import numpy as np

from repro.grids.transfer import interpolate_correction, restrict_full_weighting
from repro.linalg.direct import DirectSolver
from repro.machines.meter import NULL_METER, OpMeter, dim_op
from repro.operators.base import StencilOperator
from repro.operators.poisson import const_poisson
from repro.relax.weights import OMEGA_RECURSE
from repro.util.validation import check_cube_grid

__all__ = ["full_multigrid_cycle", "vcycle", "wcycle"]

_DEFAULT_DIRECT = DirectSolver(backend="block", cache_factorization=True)


def _resolve_operator(
    operator: StencilOperator | None, u: np.ndarray
) -> StencilOperator:
    n = u.shape[0]
    if operator is None:
        if u.ndim == 3:
            from repro.operators.poisson3d import const_poisson3d

            return const_poisson3d(n)
        return const_poisson(n)
    if operator.ndim != u.ndim:
        raise ValueError(
            f"operator is {operator.ndim}-D, input grid has ndim={u.ndim}"
        )
    if operator.n != n:
        raise ValueError(f"operator bound to n={operator.n}, input grid is {n}")
    return operator


def _coarse_correction(
    u: np.ndarray,
    b: np.ndarray,
    *,
    op: StencilOperator,
    recursions: int,
    pre_sweeps: int,
    post_sweeps: int,
    omega: float,
    base_size: int,
    direct: DirectSolver,
    meter: OpMeter,
) -> None:
    """Shared body of the V and W cycles (`recursions` = 1 or 2)."""
    n = u.shape[0]
    nd = op.ndim
    if n <= base_size:
        op.direct_solve(u, b, solver=direct)
        meter.charge(dim_op("direct", nd), n)
        return
    if pre_sweeps:
        op.sor_sweeps(u, b, omega, pre_sweeps)
        meter.charge(dim_op("relax", nd), n, pre_sweeps)
    r = op.residual(u, b)
    meter.charge(dim_op("residual", nd), n)
    rc = restrict_full_weighting(r)
    meter.charge(dim_op("restrict", nd), n)
    ec = np.zeros_like(rc)
    coarse = op.coarsen()
    for _ in range(recursions):
        _coarse_correction(
            ec,
            rc,
            op=coarse,
            recursions=recursions,
            pre_sweeps=pre_sweeps,
            post_sweeps=post_sweeps,
            omega=omega,
            base_size=base_size,
            direct=direct,
            meter=meter,
        )
    interpolate_correction(u, ec)
    meter.charge(dim_op("interpolate", nd), n)
    if post_sweeps:
        op.sor_sweeps(u, b, omega, post_sweeps)
        meter.charge(dim_op("relax", nd), n, post_sweeps)


def vcycle(
    u: np.ndarray,
    b: np.ndarray,
    *,
    pre_sweeps: int = 1,
    post_sweeps: int = 1,
    omega: float = OMEGA_RECURSE,
    base_size: int = 3,
    direct: DirectSolver | None = None,
    meter: OpMeter = NULL_METER,
    operator: StencilOperator | None = None,
) -> np.ndarray:
    """One MULTIGRID-V-SIMPLE cycle on ``u`` in place.

    ``base_size`` is the grid size at which the recursion bottoms out into
    the direct solver (the paper's simple variant uses 3; the heuristic
    strategies of Figure 7 use larger cutoffs).
    """
    check_cube_grid(u, "u")
    _coarse_correction(
        u,
        b,
        op=_resolve_operator(operator, u),
        recursions=1,
        pre_sweeps=pre_sweeps,
        post_sweeps=post_sweeps,
        omega=omega,
        base_size=base_size,
        direct=direct or _DEFAULT_DIRECT,
        meter=meter,
    )
    return u


def wcycle(
    u: np.ndarray,
    b: np.ndarray,
    *,
    pre_sweeps: int = 1,
    post_sweeps: int = 1,
    omega: float = OMEGA_RECURSE,
    base_size: int = 3,
    direct: DirectSolver | None = None,
    meter: OpMeter = NULL_METER,
    operator: StencilOperator | None = None,
) -> np.ndarray:
    """One W cycle (two coarse-grid corrections per level) on ``u`` in place."""
    check_cube_grid(u, "u")
    _coarse_correction(
        u,
        b,
        op=_resolve_operator(operator, u),
        recursions=2,
        pre_sweeps=pre_sweeps,
        post_sweeps=post_sweeps,
        omega=omega,
        base_size=base_size,
        direct=direct or _DEFAULT_DIRECT,
        meter=meter,
    )
    return u


def full_multigrid_cycle(
    u: np.ndarray,
    b: np.ndarray,
    *,
    pre_sweeps: int = 1,
    post_sweeps: int = 1,
    omega: float = OMEGA_RECURSE,
    base_size: int = 3,
    direct: DirectSolver | None = None,
    meter: OpMeter = NULL_METER,
    operator: StencilOperator | None = None,
) -> np.ndarray:
    """One standard full multigrid cycle (Figure 3) on ``u`` in place.

    Estimation phase: restrict the residual equation and solve it with a
    recursive full-MG call, then add the interpolated correction.  Solve
    phase: one standard V cycle at this resolution.
    """
    check_cube_grid(u, "u")
    direct = direct or _DEFAULT_DIRECT
    op = _resolve_operator(operator, u)
    n = u.shape[0]
    nd = op.ndim
    if n <= base_size:
        op.direct_solve(u, b, solver=direct)
        meter.charge(dim_op("direct", nd), n)
        return u
    r = op.residual(u, b)
    meter.charge(dim_op("residual", nd), n)
    rc = restrict_full_weighting(r)
    meter.charge(dim_op("restrict", nd), n)
    ec = np.zeros_like(rc)
    full_multigrid_cycle(
        ec,
        rc,
        pre_sweeps=pre_sweeps,
        post_sweeps=post_sweeps,
        omega=omega,
        base_size=base_size,
        direct=direct,
        meter=meter,
        operator=op.coarsen(),
    )
    interpolate_correction(u, ec)
    meter.charge(dim_op("interpolate", nd), n)
    vcycle(
        u,
        b,
        pre_sweeps=pre_sweeps,
        post_sweeps=post_sweeps,
        omega=omega,
        base_size=base_size,
        direct=direct,
        meter=meter,
        operator=op,
    )
    return u
