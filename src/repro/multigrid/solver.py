"""Reference solvers that iterate until an accuracy target is met.

These are the paper's comparison points: iterated SOR(omega_opt) and the
"reference V" / "reference full MG" algorithms of section 4.2.2.  Each takes
an ``accuracy_of`` callable — typically
:meth:`repro.accuracy.AccuracyJudge.accuracy_of` — so the stopping rule is
the same error-ratio metric the tuner optimizes for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.linalg.direct import DirectSolver
from repro.machines.meter import NULL_METER, OpMeter, dim_op
from repro.multigrid.cycles import full_multigrid_cycle, vcycle
from repro.operators.base import StencilOperator
from repro.operators.poisson import const_poisson
from repro.relax.weights import OMEGA_RECURSE

__all__ = [
    "IterationLimit",
    "ReferenceFullMGSolver",
    "ReferenceVSolver",
    "SORSolver",
]

AccuracyFn = Callable[[np.ndarray], float]


class IterationLimit(RuntimeError):
    """Raised when a reference solver exhausts its iteration budget."""


@dataclass
class _IterativeSolverBase:
    """Common driver: apply `self._step` until accuracy_of(x) >= target."""

    max_iters: int = 10_000

    def solve(
        self,
        x: np.ndarray,
        b: np.ndarray,
        accuracy_of: AccuracyFn,
        target: float,
        meter: OpMeter = NULL_METER,
    ) -> int:
        """Iterate on ``x`` in place until the target accuracy; return the
        iteration count."""
        if accuracy_of(x) >= target:
            return 0
        for it in range(1, self.max_iters + 1):
            self._step(x, b, meter)
            if accuracy_of(x) >= target:
                return it
        raise IterationLimit(
            f"{type(self).__name__} did not reach accuracy {target:g} in "
            f"{self.max_iters} iterations (n={x.shape[0]})"
        )

    def _step(self, x: np.ndarray, b: np.ndarray, meter: OpMeter) -> None:
        raise NotImplementedError


@dataclass
class SORSolver(_IterativeSolverBase):
    """Iterated red-black SOR with the size-optimal weight (Figure 6's "SOR").

    ``omega`` of None means: use omega_opt for the grid size at solve time.
    ``operator`` of None means the constant-coefficient Poisson default.
    """

    omega: float | None = None
    operator: StencilOperator | None = None

    def _step(self, x: np.ndarray, b: np.ndarray, meter: OpMeter) -> None:
        op = self.operator
        if op is None:
            if x.ndim == 3:
                from repro.operators.poisson3d import const_poisson3d

                op = const_poisson3d(x.shape[0])
            else:
                op = const_poisson(x.shape[0])
        w = self.omega if self.omega is not None else op.omega_opt()
        op.sor_sweeps(x, b, w, 1)
        meter.charge(dim_op("relax", x.ndim), x.shape[0])


@dataclass
class ReferenceVSolver(_IterativeSolverBase):
    """Standard V cycles until the accuracy target is reached."""

    pre_sweeps: int = 1
    post_sweeps: int = 1
    omega: float = OMEGA_RECURSE
    base_size: int = 3
    direct: DirectSolver | None = None
    operator: StencilOperator | None = None

    def _step(self, x: np.ndarray, b: np.ndarray, meter: OpMeter) -> None:
        vcycle(
            x,
            b,
            pre_sweeps=self.pre_sweeps,
            post_sweeps=self.post_sweeps,
            omega=self.omega,
            base_size=self.base_size,
            direct=self.direct,
            meter=meter,
            operator=self.operator,
        )


@dataclass
class ReferenceFullMGSolver(_IterativeSolverBase):
    """One standard full-MG cycle, then V cycles until the target is reached.

    This is the paper's "reference full multigrid algorithm": a full
    multigrid cycle as in Figure 3, followed by standard V cycles.
    """

    pre_sweeps: int = 1
    post_sweeps: int = 1
    omega: float = OMEGA_RECURSE
    base_size: int = 3
    direct: DirectSolver | None = None
    operator: StencilOperator | None = None

    def solve(
        self,
        x: np.ndarray,
        b: np.ndarray,
        accuracy_of: AccuracyFn,
        target: float,
        meter: OpMeter = NULL_METER,
    ) -> int:
        if accuracy_of(x) >= target:
            return 0
        full_multigrid_cycle(
            x,
            b,
            pre_sweeps=self.pre_sweeps,
            post_sweeps=self.post_sweeps,
            omega=self.omega,
            base_size=self.base_size,
            direct=self.direct,
            meter=meter,
            operator=self.operator,
        )
        if accuracy_of(x) >= target:
            return 1
        for it in range(2, self.max_iters + 1):
            self._step(x, b, meter)
            if accuracy_of(x) >= target:
                return it
        raise IterationLimit(
            f"reference full MG did not reach accuracy {target:g} in "
            f"{self.max_iters} iterations (n={x.shape[0]})"
        )

    def _step(self, x: np.ndarray, b: np.ndarray, meter: OpMeter) -> None:
        vcycle(
            x,
            b,
            pre_sweeps=self.pre_sweeps,
            post_sweeps=self.post_sweeps,
            omega=self.omega,
            base_size=self.base_size,
            direct=self.direct,
            meter=meter,
            operator=self.operator,
        )
