"""Reference multigrid algorithms — the paper's baselines.

* :func:`vcycle` — MULTIGRID-V-SIMPLE from section 2.1: one pre-relaxation,
  coarse-grid correction by recursion, one post-relaxation, direct solve at
  the 3x3 base case.
* :func:`wcycle` — the W-shaped variant (two coarse corrections per level).
* :func:`full_multigrid_cycle` — the standard full multigrid cycle of
  Figure 3 (estimation phase by recursion, then a V-cycle).
* :class:`ReferenceVSolver` / :class:`ReferenceFullMGSolver` — the two
  reference algorithms of section 4.2.2: iterate standard V cycles until an
  accuracy target is reached, optionally preceded by one full-MG cycle.
"""

from repro.multigrid.cycles import full_multigrid_cycle, vcycle, wcycle
from repro.multigrid.solver import (
    IterationLimit,
    ReferenceFullMGSolver,
    ReferenceVSolver,
    SORSolver,
)

__all__ = [
    "IterationLimit",
    "ReferenceFullMGSolver",
    "ReferenceVSolver",
    "SORSolver",
    "full_multigrid_cycle",
    "vcycle",
    "wcycle",
]
