"""Training and benchmark input generators.

Section 4 of the paper: "We decided to use matrices with entries drawn from
two different random distributions: 1) uniform over [-2^32, 2^32]
(unbiased), and 2) the same distribution shifted in the positive direction
by 2^31 (biased).  The random entries were used to generate right-hand sides
(b) and boundary conditions (boundaries of x)."  A point-source/sink family
is also mentioned; all three are implemented here.
"""

from repro.operators.coefficients import COEFF_FIELDS, coefficient_field
from repro.workloads.problem import PoissonProblem, Problem
from repro.workloads.distributions import (
    DISTRIBUTIONS,
    biased_uniform,
    make_problem,
    point_sources,
    training_set,
    unbiased_uniform,
)

__all__ = [
    "COEFF_FIELDS",
    "DISTRIBUTIONS",
    "PoissonProblem",
    "Problem",
    "biased_uniform",
    "coefficient_field",
    "make_problem",
    "point_sources",
    "training_set",
    "unbiased_uniform",
]
