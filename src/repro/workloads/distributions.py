"""The paper's input distributions.

Magnitudes follow section 4: uniform over [-2^32, 2^32] for the unbiased
family; the same shifted by +2^31 for the biased family.  The bias matters:
a mean-shifted right-hand side has a large smooth error component, which
changes how much coarse-grid work pays off — the mechanism behind the
different tuned cycles in Figures 5(b)/5(d).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.grids.boundary import boundary_size
from repro.operators.spec import OperatorSpec, parse_operator
from repro.util.rng import derive_rng
from repro.util.validation import check_grid_size
from repro.workloads.problem import PoissonProblem

__all__ = [
    "DISTRIBUTIONS",
    "biased_uniform",
    "make_problem",
    "point_sources",
    "training_set",
    "unbiased_uniform",
]

_SCALE = float(2**32)
_SHIFT = float(2**31)


def _owned(arr: np.ndarray) -> np.ndarray:
    """Freeze a generator-owned array in place.

    The problem constructor copies *writable* inputs (it must not alias
    or freeze caller buffers); generators own their freshly drawn arrays
    and hand them over read-only, so construction stays copy-free on the
    training hot path.
    """
    arr.setflags(write=False)
    return arr


def unbiased_uniform(
    n: int,
    rng: np.random.Generator,
    label: str = "unbiased",
    operator: OperatorSpec | str | None = None,
) -> PoissonProblem:
    """RHS and boundary uniform over [-2^32, 2^32].

    The grid shape follows the operator's dimensionality (2-D draws are
    byte-identical to the historical generator; 3-D operators draw cube
    RHS data and the face boundary).
    """
    check_grid_size(n)
    spec = parse_operator(operator)
    b = rng.uniform(-_SCALE, _SCALE, size=(n,) * spec.ndim)
    boundary = rng.uniform(-_SCALE, _SCALE, size=boundary_size(n, spec.ndim))
    return PoissonProblem(
        b=_owned(b), boundary=_owned(boundary), label=label, operator=spec,
    )


def biased_uniform(
    n: int,
    rng: np.random.Generator,
    label: str = "biased",
    operator: OperatorSpec | str | None = None,
) -> PoissonProblem:
    """The unbiased distribution shifted in the positive direction by 2^31."""
    check_grid_size(n)
    spec = parse_operator(operator)
    b = rng.uniform(-_SCALE, _SCALE, size=(n,) * spec.ndim) + _SHIFT
    boundary = rng.uniform(-_SCALE, _SCALE, size=boundary_size(n, spec.ndim)) + _SHIFT
    return PoissonProblem(
        b=_owned(b), boundary=_owned(boundary), label=label, operator=spec,
    )


def point_sources(
    n: int,
    rng: np.random.Generator,
    count: int = 8,
    label: str = "point-sources",
    operator: OperatorSpec | str | None = None,
) -> PoissonProblem:
    """A finite number of random point sources/sinks in the right-hand side.

    The paper reports results for this family were similar to the unbiased
    one; it is included for completeness and used in robustness tests.
    """
    check_grid_size(n)
    if count < 1:
        raise ValueError("count must be >= 1")
    spec = parse_operator(operator)
    ndim = spec.ndim
    b = np.zeros((n,) * ndim, dtype=np.float64)
    interior = n - 2
    k = min(count, interior**ndim)
    flat = rng.choice(interior**ndim, size=k, replace=False)
    idx = np.unravel_index(flat, (interior,) * ndim)
    signs = rng.choice([-1.0, 1.0], size=k)
    b[tuple(i + 1 for i in idx)] = signs * rng.uniform(0.5 * _SCALE, _SCALE, size=k)
    boundary = rng.uniform(-_SCALE, _SCALE, size=boundary_size(n, ndim))
    return PoissonProblem(
        b=_owned(b), boundary=_owned(boundary), label=label, operator=spec,
    )


#: Generators take (n, rng) plus keyword-only ``label`` and ``operator``
#: (make_problem passes both by keyword — point_sources has an extra
#: positional ``count`` in between).
DISTRIBUTIONS: dict[str, Callable[..., PoissonProblem]] = {
    "unbiased": unbiased_uniform,
    "biased": biased_uniform,
    "point-sources": point_sources,
}


def make_problem(
    distribution: str,
    n: int,
    seed: int | None = None,
    index: int = 0,
    operator: OperatorSpec | str | None = None,
) -> PoissonProblem:
    """One deterministic problem instance from a named distribution.

    ``operator`` selects the discrete operator A (spec or canonical
    string; default constant-coefficient Poisson).  The right-hand side
    and boundary draws are operator-independent, so the same seed yields
    the same data for every operator family.
    """
    gen = DISTRIBUTIONS.get(distribution)
    if gen is None:
        raise KeyError(f"unknown distribution {distribution!r}; have {sorted(DISTRIBUTIONS)}")
    rng = derive_rng(seed, distribution, n, index)
    problem = gen(n, rng, label=distribution, operator=operator)
    object.__setattr__(problem, "seed", seed)
    return problem


def training_set(
    distribution: str,
    n: int,
    count: int,
    seed: int | None = None,
    operator: OperatorSpec | str | None = None,
) -> Sequence[PoissonProblem]:
    """``count`` deterministic training instances at grid size ``n``."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return [
        make_problem(distribution, n, seed, index=i, operator=operator)
        for i in range(count)
    ]
