"""The paper's input distributions.

Magnitudes follow section 4: uniform over [-2^32, 2^32] for the unbiased
family; the same shifted by +2^31 for the biased family.  The bias matters:
a mean-shifted right-hand side has a large smooth error component, which
changes how much coarse-grid work pays off — the mechanism behind the
different tuned cycles in Figures 5(b)/5(d).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.util.rng import derive_rng
from repro.util.validation import check_grid_size
from repro.workloads.problem import PoissonProblem

__all__ = [
    "DISTRIBUTIONS",
    "biased_uniform",
    "make_problem",
    "point_sources",
    "training_set",
    "unbiased_uniform",
]

_SCALE = float(2**32)
_SHIFT = float(2**31)


def unbiased_uniform(n: int, rng: np.random.Generator, label: str = "unbiased") -> PoissonProblem:
    """RHS and boundary uniform over [-2^32, 2^32]."""
    check_grid_size(n)
    b = rng.uniform(-_SCALE, _SCALE, size=(n, n))
    boundary = rng.uniform(-_SCALE, _SCALE, size=4 * n - 4)
    return PoissonProblem(b=b, boundary=boundary, label=label)


def biased_uniform(n: int, rng: np.random.Generator, label: str = "biased") -> PoissonProblem:
    """The unbiased distribution shifted in the positive direction by 2^31."""
    check_grid_size(n)
    b = rng.uniform(-_SCALE, _SCALE, size=(n, n)) + _SHIFT
    boundary = rng.uniform(-_SCALE, _SCALE, size=4 * n - 4) + _SHIFT
    return PoissonProblem(b=b, boundary=boundary, label=label)


def point_sources(
    n: int,
    rng: np.random.Generator,
    count: int = 8,
    label: str = "point-sources",
) -> PoissonProblem:
    """A finite number of random point sources/sinks in the right-hand side.

    The paper reports results for this family were similar to the unbiased
    one; it is included for completeness and used in robustness tests.
    """
    check_grid_size(n)
    if count < 1:
        raise ValueError("count must be >= 1")
    b = np.zeros((n, n), dtype=np.float64)
    interior = n - 2
    k = min(count, interior * interior)
    flat = rng.choice(interior * interior, size=k, replace=False)
    rows, cols = np.divmod(flat, interior)
    signs = rng.choice([-1.0, 1.0], size=k)
    b[rows + 1, cols + 1] = signs * rng.uniform(0.5 * _SCALE, _SCALE, size=k)
    boundary = rng.uniform(-_SCALE, _SCALE, size=4 * n - 4)
    return PoissonProblem(b=b, boundary=boundary, label=label)


DISTRIBUTIONS: dict[str, Callable[[int, np.random.Generator, str], PoissonProblem]] = {
    "unbiased": unbiased_uniform,
    "biased": biased_uniform,
    "point-sources": point_sources,
}


def make_problem(
    distribution: str, n: int, seed: int | None = None, index: int = 0
) -> PoissonProblem:
    """One deterministic problem instance from a named distribution."""
    gen = DISTRIBUTIONS.get(distribution)
    if gen is None:
        raise KeyError(f"unknown distribution {distribution!r}; have {sorted(DISTRIBUTIONS)}")
    rng = derive_rng(seed, distribution, n, index)
    problem = gen(n, rng, distribution)
    object.__setattr__(problem, "seed", seed)
    return problem


def training_set(
    distribution: str, n: int, count: int, seed: int | None = None
) -> Sequence[PoissonProblem]:
    """``count`` deterministic training instances at grid size ``n``."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return [make_problem(distribution, n, seed, index=i) for i in range(count)]
