"""Problem bundle: right-hand side, Dirichlet boundary, initial guess."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grids.boundary import set_boundary
from repro.util.validation import check_square_grid, level_of_size

__all__ = ["PoissonProblem"]


@dataclass(frozen=True)
class PoissonProblem:
    """One instance of the discrete Poisson problem A u = b.

    ``b`` is the full-grid right-hand side (its boundary ring is unused) and
    ``boundary`` is the Dirichlet data in :func:`repro.grids.boundary.
    boundary_ring` layout.  The canonical initial guess is zero in the
    interior with the boundary ring applied — the state "x" that the
    paper's accuracy ratio uses as x_in.
    """

    b: np.ndarray
    boundary: np.ndarray
    label: str = "unnamed"
    seed: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        check_square_grid(self.b, "b")
        n = self.b.shape[0]
        if self.boundary.shape != (4 * n - 4,):
            raise ValueError(
                f"boundary length {self.boundary.shape} != ({4 * n - 4},) for n={n}"
            )
        self.b.setflags(write=False)
        self.boundary.setflags(write=False)

    @property
    def n(self) -> int:
        return self.b.shape[0]

    @property
    def level(self) -> int:
        return level_of_size(self.n)

    def initial_guess(self) -> np.ndarray:
        """Fresh writable grid: zero interior, Dirichlet boundary ring."""
        x = np.zeros_like(self.b)
        set_boundary(x, self.boundary)
        return x

    def rhs(self) -> np.ndarray:
        """Writable copy of the right-hand side (solvers never mutate b, but
        callers sometimes need one)."""
        return self.b.copy()
