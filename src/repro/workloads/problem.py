"""Problem bundle: right-hand side, Dirichlet boundary, initial guess."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grids.boundary import boundary_size, set_boundary_values
from repro.operators.spec import POISSON, OperatorSpec, parse_operator
from repro.util.validation import check_cube_grid, level_of_size

__all__ = ["PoissonProblem", "Problem"]


@dataclass(frozen=True)
class PoissonProblem:
    """One instance of the discrete problem A u = b.

    ``b`` is the full-grid right-hand side (its boundary ring is unused) and
    ``boundary`` is the Dirichlet data in :func:`repro.grids.boundary.
    boundary_ring` layout.  The canonical initial guess is zero in the
    interior with the boundary ring applied — the state "x" that the
    paper's accuracy ratio uses as x_in.

    ``operator`` names the discrete operator A (default: the
    constant-coefficient Poisson stencil the class is named after; the
    name predates the pluggable operator layer and is kept for
    compatibility — :data:`Problem` is the neutral alias).

    The constructor stores *private read-only copies* of writable input
    arrays, so building a problem never freezes or aliases the caller's
    buffers; already read-only inputs are shared without copying.
    """

    b: np.ndarray
    boundary: np.ndarray
    label: str = "unnamed"
    seed: int | None = field(default=None, compare=False)
    operator: OperatorSpec = POISSON

    def __post_init__(self) -> None:
        check_cube_grid(self.b, "b")
        n = self.b.shape[0]
        expected = boundary_size(n, self.b.ndim)
        if self.boundary.shape != (expected,):
            raise ValueError(
                f"boundary length {self.boundary.shape} != ({expected},) for n={n}"
            )
        object.__setattr__(self, "operator", parse_operator(self.operator))
        if self.operator.ndim != self.b.ndim:
            raise ValueError(
                f"operator {self.operator.canonical()!r} is "
                f"{self.operator.ndim}-D but b has ndim={self.b.ndim}"
            )
        for name in ("b", "boundary"):
            arr = getattr(self, name)
            if arr.flags.writeable:
                arr = arr.copy()
                arr.setflags(write=False)
                object.__setattr__(self, name, arr)

    @property
    def n(self) -> int:
        return self.b.shape[0]

    @property
    def ndim(self) -> int:
        """Grid dimensionality (2 or 3)."""
        return self.b.ndim

    @property
    def level(self) -> int:
        return level_of_size(self.n)

    def initial_guess(self) -> np.ndarray:
        """Fresh writable grid: zero interior, Dirichlet boundary applied."""
        x = np.zeros_like(self.b)
        set_boundary_values(x, self.boundary)
        return x

    def rhs(self) -> np.ndarray:
        """Writable copy of the right-hand side (solvers never mutate b, but
        callers sometimes need one)."""
        return self.b.copy()


#: Operator-neutral alias (the problem bundle is no longer Poisson-only).
Problem = PoissonProblem
