"""Problem bundle: right-hand side, Dirichlet boundary, initial guess."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grids.boundary import set_boundary
from repro.operators.spec import POISSON, OperatorSpec, parse_operator
from repro.util.validation import check_square_grid, level_of_size

__all__ = ["PoissonProblem", "Problem"]


@dataclass(frozen=True)
class PoissonProblem:
    """One instance of the discrete problem A u = b.

    ``b`` is the full-grid right-hand side (its boundary ring is unused) and
    ``boundary`` is the Dirichlet data in :func:`repro.grids.boundary.
    boundary_ring` layout.  The canonical initial guess is zero in the
    interior with the boundary ring applied — the state "x" that the
    paper's accuracy ratio uses as x_in.

    ``operator`` names the discrete operator A (default: the
    constant-coefficient Poisson stencil the class is named after; the
    name predates the pluggable operator layer and is kept for
    compatibility — :data:`Problem` is the neutral alias).

    The constructor stores *private read-only copies* of writable input
    arrays, so building a problem never freezes or aliases the caller's
    buffers; already read-only inputs are shared without copying.
    """

    b: np.ndarray
    boundary: np.ndarray
    label: str = "unnamed"
    seed: int | None = field(default=None, compare=False)
    operator: OperatorSpec = POISSON

    def __post_init__(self) -> None:
        check_square_grid(self.b, "b")
        n = self.b.shape[0]
        if self.boundary.shape != (4 * n - 4,):
            raise ValueError(
                f"boundary length {self.boundary.shape} != ({4 * n - 4},) for n={n}"
            )
        object.__setattr__(self, "operator", parse_operator(self.operator))
        for name in ("b", "boundary"):
            arr = getattr(self, name)
            if arr.flags.writeable:
                arr = arr.copy()
                arr.setflags(write=False)
                object.__setattr__(self, name, arr)

    @property
    def n(self) -> int:
        return self.b.shape[0]

    @property
    def level(self) -> int:
        return level_of_size(self.n)

    def initial_guess(self) -> np.ndarray:
        """Fresh writable grid: zero interior, Dirichlet boundary ring."""
        x = np.zeros_like(self.b)
        set_boundary(x, self.boundary)
        return x

    def rhs(self) -> np.ndarray:
        """Writable copy of the right-hand side (solvers never mutate b, but
        callers sometimes need one)."""
        return self.b.copy()


#: Operator-neutral alias (the problem bundle is no longer Poisson-only).
Problem = PoissonProblem
