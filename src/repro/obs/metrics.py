"""Unified metrics: counters, gauges, histograms in one labeled registry.

One :class:`MetricsRegistry` owns every metric family in a process.
Callers mint metric handles once (``registry.counter("requests",
shard="0")``) and mutate them directly on the hot path — no name
lookup, no global lock per increment.  The serving telemetry
(:mod:`repro.serve.telemetry`) re-homes its counters, gauges, and
latency histograms onto these primitives while keeping its exported
JSON byte-identical; the fleet worker's heartbeat counters do the same.

The :class:`Histogram` here is the geometric-bucket latency histogram
that previously lived in the serve telemetry module, promoted so every
subsystem shares one implementation (and one Prometheus exposition).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PERCENTILES",
    "default_bounds",
]

#: Default percentiles reported by snapshots.
PERCENTILES = (0.50, 0.95, 0.99)

#: label dicts are stored canonically as sorted (key, value) tuples.
LabelKey = tuple[tuple[str, str], ...]


def default_bounds() -> tuple[float, ...]:
    """Geometric bucket upper bounds from 1 microsecond to ~1000 s.

    Nine decades at 8 buckets/decade keeps relative error per bucket
    under ~33% — plenty for tail-latency reporting — with 72 buckets.
    """
    return tuple(1e-6 * 10 ** (i / 8) for i in range(1, 73))


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic integer counter.

    Increments are a single ``+=`` on one attribute — atomic enough
    under the GIL for telemetry, and callers that need snapshot
    consistency (the serve telemetry) serialize with their own lock.
    """

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError(f"counter increment must be >= 0, not {by}")
        self.value += by


class Gauge:
    """Last-write-wins float gauge."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Values are durations in seconds.  Percentiles interpolate to the
    geometric midpoint of the selected bucket, so estimates are stable
    under merge and never exceed the observed maximum by more than one
    bucket width.  Not thread-safe on its own; owners (e.g. the serve
    :class:`~repro.serve.telemetry.Telemetry`) serialize access.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum", "max")

    def __init__(
        self,
        bounds: tuple[float, ...] | None = None,
        name: str = "",
        labels: LabelKey = (),
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = bounds if bounds is not None else default_bounds()
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, not {seconds}")
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated latency at quantile ``q`` in [0, 1] (0.0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], not {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                if i >= len(self.bounds):
                    return self.max
                lo = self.bounds[i - 1] if i > 0 else self.bounds[i] / 10
                return min(math.sqrt(lo * self.bounds[i]), self.max)
        return self.max  # pragma: no cover - rank <= count by construction

    def to_dict(self, percentiles: tuple[float, ...] = PERCENTILES) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.count,
            "mean_s": self.mean,
            "max_s": self.max,
        }
        for q in percentiles:
            out[f"p{int(round(q * 100))}_s"] = self.percentile(q)
        return out


class MetricsRegistry:
    """Registry of labeled metric families for one process.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the same
    (name, labels) pair always returns the same object, so callers keep
    the handle and mutate it without further lookups.  Creation is
    serialized; mutation happens on the handles themselves.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._kinds: dict[str, str] = {}

    def _claim(self, name: str, kind: str) -> None:
        # Prometheus forbids one metric name with two types; catching
        # the clash at mint time beats silently exporting garbage.
        claimed = self._kinds.setdefault(name, kind)
        if claimed != kind:
            raise ValueError(f"metric {name!r} already registered as a {claimed}")

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                self._claim(name, "counter")
                metric = self._counters[key] = Counter(name, key[1])
            return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                self._claim(name, "gauge")
                metric = self._gauges[key] = Gauge(name, key[1])
            return metric

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                self._claim(name, "histogram")
                metric = self._histograms[key] = Histogram(bounds, name, key[1])
            return metric

    # -- reading -----------------------------------------------------------

    def collect(self) -> Iterator[Counter | Gauge | Histogram]:
        """Every registered metric, counters then gauges then histograms,
        each family sorted by (name, labels)."""
        with self._lock:
            counters = [self._counters[k] for k in sorted(self._counters)]
            gauges = [self._gauges[k] for k in sorted(self._gauges)]
            hists = [self._histograms[k] for k in sorted(self._histograms)]
        yield from counters
        yield from gauges
        yield from hists

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable view: ``{counters, gauges, histograms}``.

        Labeled metrics render their labels into the key as
        ``name{k=v,...}`` so the flat dicts stay unambiguous.
        """
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.collect():
            key = _render_key(metric.name, metric.labels)
            if isinstance(metric, Counter):
                out["counters"][key] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][key] = metric.value
            else:
                out["histograms"][key] = metric.to_dict()
        return out


def _render_key(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"
