"""Process-global tracer: configure once, read from anywhere.

Components with explicit ``tracer=`` parameters (server, front door,
executor) should take them — injection beats globals.  But deep call
sites that cannot grow a parameter without churning every caller
(registry tune spans, fleet worker cycles, kernel compile events) read
the process-global tracer instead.  It defaults to
:data:`~repro.obs.trace.NOOP_TRACER`, so an unconfigured process pays
one module-attribute load per would-be span and nothing else.
"""

from __future__ import annotations

from repro.obs.trace import NOOP_TRACER, NoopTracer, SpanSink, Tracer
from repro.util.clock import Clock

__all__ = ["configure", "get_tracer", "reset"]

_TRACER: Tracer | NoopTracer = NOOP_TRACER


def configure(
    *,
    enabled: bool = True,
    clock: Clock | None = None,
    capacity: int = 4096,
    sink: SpanSink | None = None,
) -> Tracer | NoopTracer:
    """Install (and return) the process-global tracer.

    ``enabled=False`` restores the shared no-op tracer.  Re-configuring
    replaces the previous tracer; spans already in its sink stay with
    that sink.
    """
    global _TRACER
    _TRACER = Tracer(sink=sink, clock=clock, capacity=capacity) if enabled else NOOP_TRACER
    return _TRACER


def get_tracer() -> Tracer | NoopTracer:
    """The process-global tracer (no-op unless :func:`configure`\\ d)."""
    return _TRACER


def reset() -> None:
    """Back to the no-op tracer (test teardown hook)."""
    global _TRACER
    _TRACER = NOOP_TRACER
