"""Per-(level, op, backend) wall-clock aggregation from executor spans.

The tuner's :class:`~repro.tuner.meter.OpMeter` counts *how many* kernel
operations a plan charges; this profiler records *how long* they
actually took, keyed the same way the machine profile predicts them —
(level, op, backend).  Two consumers:

- the ROADMAP's learned-cost-model tuner, which needs measured
  (features -> seconds) rows, exactly what :meth:`SolveProfiler.rows`
  emits;
- profile-drift detection: comparing measured per-op seconds against a
  stored :class:`~repro.tuner.machine.MachineProfile` answers "has this
  machine drifted since we tuned" (the sustainable-autotuning concern).

Thread-safe: executors in different worker threads record into one
profiler.  Recording is one lock acquire + two float adds, far off the
per-sweep hot path (it happens once per kernel *call*, not per point).
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["SolveProfiler"]


class SolveProfiler:
    """Aggregates measured seconds per (level, op, backend) cell."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cells: dict[tuple[int, str, str], list[float]] = {}

    def record(self, level: int, op: str, backend: str, seconds: float) -> None:
        key = (level, op, backend)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                self._cells[key] = [1.0, seconds]
            else:
                cell[0] += 1.0
                cell[1] += seconds

    def merge(self, other: "SolveProfiler") -> None:
        """Fold another profiler's cells into this one."""
        with other._lock:
            cells = {k: list(v) for k, v in other._cells.items()}
        with self._lock:
            for key, (count, total) in cells.items():
                cell = self._cells.get(key)
                if cell is None:
                    self._cells[key] = [count, total]
                else:
                    cell[0] += count
                    cell[1] += total

    # -- reading -----------------------------------------------------------

    def rows(self) -> list[dict[str, Any]]:
        """Measurement rows sorted by (level, op, backend).

        Each row: ``{level, op, backend, count, total_s, mean_s}`` —
        the training-row shape for a learned cost model.
        """
        with self._lock:
            items = sorted(self._cells.items())
        return [
            {
                "level": level,
                "op": op,
                "backend": backend,
                "count": int(count),
                "total_s": total,
                "mean_s": total / count if count else 0.0,
            }
            for (level, op, backend), (count, total) in items
        ]

    def to_training_rows(self, ndim: int = 2) -> list[dict[str, Any]]:
        """Measured (op, n) -> seconds rows in the cost-model vocabulary.

        Cells are recorded under base op family names (``relax``,
        ``direct``, ...); a learned cost model prices the meter
        vocabulary (``relax3d``, ``relax@cnative``, ...), so each cell is
        qualified here — by ``ndim`` and by its recorded backend — rather
        than making every consumer re-parse :meth:`rows` export text.
        Each row: ``{op, n, seconds, weight}`` where ``n`` is the grid
        side length of the cell's level, ``seconds`` the per-call mean,
        and ``weight`` the call count.  Cells whose mean rounds to zero
        (clock granularity) are dropped — they carry no timing signal.
        An empty profiler yields an empty list.
        """
        from repro.machines.meter import backend_op, dim_op

        with self._lock:
            items = sorted(self._cells.items())
        rows: list[dict[str, Any]] = []
        for (level, op, backend), (count, total) in items:
            if count <= 0 or total <= 0.0:
                continue
            if op == "direct":
                # The executor records direct solves under the sentinel
                # backend "direct"; the meter op is the bare direct op.
                qualified = dim_op("direct", ndim)
            else:
                qualified = backend_op(dim_op(op, ndim), backend)
            rows.append(
                {
                    "op": qualified,
                    "n": 2**level + 1,
                    "seconds": total / count,
                    "weight": count,
                }
            )
        return rows

    def total_seconds(self) -> float:
        with self._lock:
            return sum(total for _, total in self._cells.values())

    def to_dict(self) -> dict[str, Any]:
        return {"rows": self.rows(), "total_s": self.total_seconds()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)
