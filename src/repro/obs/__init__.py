"""Observability: tracing, unified metrics, per-level solve profiling.

The paper's discipline is that performance is *measured, not assumed* —
the tuner times choices per level instead of trusting a model.  This
package extends that discipline from tuning to operations: when a
request is slow, "where did it spend its time" should be answerable
from a recorded span tree, not reconstructed from aggregate p99s.

Three layers, all optional and zero-overhead when off:

- :mod:`~repro.obs.trace` — ``Span``/``Tracer`` over the injectable
  clock layer, a lock-free ring-buffer :class:`~repro.obs.trace.SpanSink`,
  and a shared no-op tracer (:data:`~repro.obs.trace.NOOP_TRACER`) whose
  hot-path cost is one attribute load.
- :mod:`~repro.obs.metrics` — one :class:`~repro.obs.metrics.MetricsRegistry`
  of ``Counter``/``Gauge``/``Histogram`` families (with labels) that the
  serving telemetry re-homes onto without changing its JSON exports.
- :mod:`~repro.obs.profile` — per-(level, op, backend) wall-clock
  aggregation from executor spans: exactly the training rows a learned
  cost model needs, and the drift signal for stored machine profiles.

Exporters (:mod:`~repro.obs.export`) emit JSONL span logs, Chrome
``trace_event`` JSON (loadable in Perfetto / ``about:tracing``), and
Prometheus text format.  ``repro-mg obs {report,trace,export}`` drives
them from the command line.
"""

from repro.obs.bench import (
    BENCH_SCHEMA,
    bench_envelope,
    read_bench_report,
    write_bench_report,
)
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    read_spans_jsonl,
    span_from_dict,
    span_to_dict,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_bounds,
)
from repro.obs.profile import SolveProfiler
from repro.obs.runtime import configure, get_tracer, reset
from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanContext,
    SpanSink,
    Tracer,
)

__all__ = [
    "BENCH_SCHEMA",
    "NOOP_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopTracer",
    "SolveProfiler",
    "Span",
    "SpanContext",
    "SpanSink",
    "Tracer",
    "bench_envelope",
    "chrome_trace",
    "configure",
    "default_bounds",
    "get_tracer",
    "prometheus_text",
    "read_bench_report",
    "read_spans_jsonl",
    "reset",
    "span_from_dict",
    "span_to_dict",
    "write_bench_report",
    "write_spans_jsonl",
]
