"""Schema-versioned bench report envelopes.

Every benchmark in this repo writes its raw report JSON somewhere; this
module gives them one shared, versioned envelope so downstream tooling
(CI artifact diffing, dashboards, the ``repro-mg obs report`` command)
can discover and parse any bench output without knowing which bench
produced it.  The envelope is deliberately tiny::

    {
      "schema": "repro-mg-bench/v1",
      "bench": "<name>",
      "created": <wall-clock seconds, passed in by the caller>,
      "metrics": { ...bench-specific report... }
    }

Files land in ``benchmarks/out/`` as ``BENCH_<name>.json``.  The
wall-clock timestamp is *passed in* rather than read here — benches
already own a clock, and keeping this module clock-free keeps envelope
writing deterministic under test.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

__all__ = ["BENCH_SCHEMA", "bench_envelope", "read_bench_report", "write_bench_report"]

#: Version tag stamped on every envelope; bump on breaking shape changes.
BENCH_SCHEMA = "repro-mg-bench/v1"


def bench_envelope(
    name: str, metrics: Mapping[str, Any], created: float
) -> dict[str, Any]:
    """The envelope dict for one bench run (see module docstring)."""
    if not name or any(c in name for c in "/\\"):
        raise ValueError(f"bench name must be a bare label, not {name!r}")
    return {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "created": created,
        "metrics": dict(metrics),
    }


def write_bench_report(
    name: str,
    metrics: Mapping[str, Any],
    created: float,
    out_dir: str | Path,
) -> Path:
    """Write ``BENCH_<name>.json`` under ``out_dir``; returns the path."""
    envelope = bench_envelope(name, metrics, created)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{name}.json"
    path.write_text(json.dumps(envelope, indent=2, sort_keys=True) + "\n")
    return path


def read_bench_report(path: str | Path) -> dict[str, Any]:
    """Load and validate one envelope; raises ValueError on shape drift."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a {BENCH_SCHEMA} envelope "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    for field in ("bench", "created", "metrics"):
        if field not in doc:
            raise ValueError(f"{path}: envelope missing {field!r}")
    return doc
