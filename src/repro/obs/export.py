"""Exporters: JSONL span logs, Chrome trace_event JSON, Prometheus text.

Three consumers, three formats:

- **JSONL** is the durable structured log — one span per line, append
  friendly, greppable, and the interchange format the ``repro-mg obs``
  CLI reads back.
- **Chrome trace_event** (``{"traceEvents": [...]}`` with ``ph: "X"``
  complete events, microsecond timestamps) loads directly into
  Perfetto / ``about:tracing`` for flame-chart inspection of one
  request's span tree.
- **Prometheus text exposition** renders a metrics snapshot — either a
  live :class:`~repro.obs.metrics.MetricsRegistry` or the JSON snapshot
  dict the serve telemetry exports — for scrape-style dashboards.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterable

from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.trace import Span

__all__ = [
    "chrome_trace",
    "prometheus_text",
    "read_spans_jsonl",
    "span_from_dict",
    "span_to_dict",
    "write_spans_jsonl",
]


# -- span (de)serialization ------------------------------------------------


def span_to_dict(span: Span) -> dict[str, Any]:
    """JSON-serializable span record (the JSONL line format)."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "pid": span.pid,
        "tid": span.tid,
        "attrs": span.attrs,
    }


def span_from_dict(data: dict[str, Any]) -> Span:
    span = Span(
        str(data["name"]),
        str(data["trace_id"]),
        str(data["span_id"]),
        data.get("parent_id"),
        float(data["start_s"]),
        pid=int(data.get("pid", 0)),
        tid=int(data.get("tid", 0)),
        attrs=dict(data.get("attrs") or {}),
    )
    end = data.get("end_s")
    span.end_s = float(end) if end is not None else None
    return span


def write_spans_jsonl(spans: Iterable[Span], path: str | Path) -> int:
    """Write spans one-per-line; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with path.open("w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span_to_dict(span), sort_keys=True))
            fh.write("\n")
            n += 1
    return n


def read_spans_jsonl(path: str | Path) -> list[Span]:
    spans: list[Span] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans


# -- Chrome trace_event ----------------------------------------------------


def chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Spans as a Chrome ``trace_event`` document (Perfetto-loadable).

    Every span becomes one complete event (``ph: "X"``) with
    microsecond ``ts``/``dur``; trace/span/parent ids ride in ``args``
    so the tree stays reconstructable from the exported file.  Spans
    from different processes land on their own ``pid`` tracks.
    """
    events: list[dict[str, Any]] = []
    for span in spans:
        args = dict(span.attrs)
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- Prometheus text format ------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    safe = _NAME_RE.sub("_", name)
    if prefix and not safe.startswith(prefix):
        safe = f"{prefix}{safe}"
    return safe


def _prom_labels(labels: Iterable[tuple[str, str]]) -> str:
    rendered = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{{{rendered}}}" if rendered else ""


def prometheus_text(
    source: MetricsRegistry | dict[str, Any],
    prefix: str = "repro_",
) -> str:
    """Prometheus text exposition of a registry or a telemetry snapshot.

    Accepts either a live :class:`MetricsRegistry` or the snapshot dict
    exported by :meth:`repro.serve.telemetry.Telemetry.snapshot` (the
    shape ``repro-mg serve --json`` writes), so the CLI can export from
    a file long after the server is gone.
    """
    lines: list[str] = []
    if isinstance(source, MetricsRegistry):
        for metric in source.collect():
            name = _prom_name(metric.name, prefix)
            labels = _prom_labels(metric.labels)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name}{labels} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name}{labels} {metric.value}")
            else:
                lines.append(f"# TYPE {name} summary")
                for key, value in metric.to_dict().items():
                    lines.append(f"{name}_{key}{labels} {value}")
        return "\n".join(lines) + "\n"

    # One family may collect samples from several tiers (front door +
    # every shard); Prometheus requires a family's samples contiguous
    # under a single # TYPE line, so group first, render second.
    families: dict[str, tuple[str, list[str]]] = {}
    if any(k in source for k in ("counters", "gauges", "latency", "windows")):
        _snapshot_families(source, prefix, "", families)
    else:
        # FrontDoor.stats() shape: {"frontdoor": snapshot,
        # "shards": {index: snapshot}} — label each tier.
        front = source.get("frontdoor")
        if isinstance(front, dict):
            _snapshot_families(front, prefix, '{tier="frontdoor"}', families)
        shards = source.get("shards", {})
        if isinstance(shards, dict):
            for index, snap in sorted(
                shards.items(), key=lambda kv: str(kv[0])
            ):
                if isinstance(snap, dict):
                    _snapshot_families(
                        snap,
                        prefix,
                        f'{{tier="shard",shard="{index}"}}',
                        families,
                    )
    for name, (kind, samples) in families.items():
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)
    return "\n".join(lines) + "\n"


def _snapshot_families(
    source: dict[str, Any],
    prefix: str,
    labels: str,
    families: dict[str, tuple[str, list[str]]],
) -> None:
    """Fold one telemetry snapshot into ``families`` (name -> (type,
    sample lines)), appending ``labels`` to every sample."""

    def add(name: str, kind: str, sample_lines: list[str]) -> None:
        families.setdefault(name, (kind, []))[1].extend(sample_lines)

    for key, value in source.get("counters", {}).items():
        name = _prom_name(key, prefix)
        add(name, "counter", [f"{name}{labels} {value}"])
    for key, value in source.get("gauges", {}).items():
        name = _prom_name(key, prefix)
        add(name, "gauge", [f"{name}{labels} {value}"])
    for hist_name, summary in source.get("latency", {}).items():
        name = _prom_name(f"latency_{hist_name}", prefix)
        add(
            name,
            "summary",
            [f"{name}_{key}{labels} {value}" for key, value in summary.items()],
        )
    for win_name, summary in source.get("windows", {}).items():
        name = _prom_name(f"window_{win_name}", prefix)
        add(
            name,
            "gauge",
            [f"{name}_{key}{labels} {value}" for key, value in summary.items()],
        )
