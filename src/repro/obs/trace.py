"""Tracing core: spans, a lock-free ring-buffer sink, and tracers.

A :class:`Span` is one timed operation; spans link into trees through
``parent_id`` and share a ``trace_id`` per request, so one solve
submitted through the sharded front door reads as a single correlated
tree: frontdoor -> shard -> batch -> plan-cache decision -> per-level
executor ops.

Design constraints, in order:

1. **Zero overhead when off.**  Disabled components hold
   :data:`NOOP_TRACER`, whose ``span()`` returns one shared,
   allocation-free context manager.  Hot paths that want even less can
   branch on ``tracer.enabled`` once and skip the call entirely.
2. **Lock-free on the hot path.**  :class:`SpanSink` is a bounded
   buffer whose hot-path emit is the bound ``list.append`` builtin
   itself (atomic under the GIL — no lock, no Python frame); the
   oldest entries are trimmed lazily by emitters and readers.  Readers
   (reports, exporters) get a best-effort snapshot; that is the right
   trade for telemetry.
3. **Deterministic time.**  Tracers read the injectable
   :class:`~repro.util.clock.Clock` layer, so span durations in tests
   come from a ``ManualClock``, not the scheduler.

``contextvars`` carry the current span for parenting *within* a
context; they do **not** flow into worker threads or subprocesses, so
every boundary crossing (queue hand-off, shard control message) passes
an explicit :class:`SpanContext` and the receiving side re-activates it
with ``parent=`` or :meth:`Tracer.activate`.
"""

from __future__ import annotations

import itertools
import os
import threading
import uuid
from contextvars import ContextVar
from typing import Any, Iterator

from repro.util.clock import MONOTONIC_CLOCK, Clock

__all__ = [
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "SpanContext",
    "SpanSink",
    "Tracer",
]

#: Process-wide span-id counter; combined with the pid so ids stay
#: unique when shard workers ship spans back to the front door.
_SPAN_IDS = itertools.count(1)

# The pid is cached (and refreshed after fork) because it is read on
# every span start — a hot path that must stay allocation-light.
_PID = os.getpid()
_PID_HEX = f"{_PID:x}"


def _refresh_pid() -> None:
    global _PID, _PID_HEX
    _PID = os.getpid()
    _PID_HEX = f"{_PID:x}"


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix
    os.register_at_fork(after_in_child=_refresh_pid)


def _new_span_id() -> str:
    return f"{_PID_HEX}-{next(_SPAN_IDS):x}"


_new_span = object.__new__
_get_ident = threading.get_ident


def _new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


class SpanContext:
    """The propagatable part of a span: (trace_id, span_id).

    This is what crosses thread and process boundaries — a queue
    hand-off stores it on the request, a shard control message carries
    it as a two-key dict — so the receiving side can parent its spans
    into the same tree.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def to_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanContext":
        return cls(str(data["trace_id"]), str(data["span_id"]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"


class Span:
    """One timed operation in a trace tree.

    Mutable by design: created at operation start, annotated with
    ``set()`` while running, stamped with ``end_s`` and emitted to the
    sink on finish.  ``attrs`` is a plain dict of JSON-serializable
    labels (operator, level, backend, cache decision, ...).
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_s",
        "end_s",
        "attrs",
        "pid",
        "tid",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        start_s: float,
        *,
        pid: int | None = None,
        tid: int | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: float | None = None
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.pid = pid if pid is not None else _PID
        self.tid = tid if tid is not None else threading.get_ident()

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attribute labels; returns self."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_s(self) -> float:
        """Span duration (0.0 while the span is still open)."""
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration_s:.6f}s)"
        )


def _materialize_leaf(record: tuple) -> Span:
    """Build a real :class:`Span` from a deferred leaf record.

    Leaf records are emitted by :meth:`Tracer.leaf` as plain tuples —
    ``(name, attrs, start_s, end_s, parent, pid, tid)`` — so the hot
    path pays one tuple allocation instead of a Span, an id string, and
    id formatting.  Ids are drawn here, at read time; the parent is held
    by reference (a Span or SpanContext), so correlation survives even
    if the parent has already been evicted from the ring.
    """
    name, attrs, start_s, end_s, parent, pid, tid = record
    if parent is not None:
        trace_id = parent.trace_id
        parent_id: str | None = parent.span_id
    else:
        trace_id = _new_trace_id()
        parent_id = None
    span = _new_span(Span)
    span.name = name
    span.trace_id = trace_id
    span.span_id = _new_span_id()
    span.parent_id = parent_id
    span.start_s = start_s
    span.end_s = end_s
    span.attrs = attrs
    span.pid = pid
    span.tid = tid
    return span


class SpanSink:
    """Bounded buffer of finished spans with a C-speed hot path.

    ``append_raw`` is the hot-path operation: the bound ``list.append``
    builtin itself — no Python frame, no lock, no index math.  The
    buffer is kept near ``capacity`` by *lazy trimming*: ``emit`` (the
    general-purpose path) and every reader drop the oldest entries once
    the buffer overshoots.  Raw appenders skip that check, so they must
    be interleaved with emits or reads — the executor's per-op records
    satisfy this naturally because every run of ops is bracketed by an
    ``mg.level`` span whose finish goes through ``emit``.  Telemetry
    keeps the recent past; it is not an audit log.  Readers get a
    best-effort snapshot; a span emitted concurrently with a read may
    or may not appear, which is the documented (and tested) contract.

    Entries are either finished :class:`Span` objects or deferred leaf
    records (tuples, see :meth:`Tracer.leaf`); readers materialize the
    tuples into Spans lazily and write them back, so ids stay stable
    across repeated reads.  All mutations preserve the buffer list's
    identity (in-place trim and clear), keeping bound ``append_raw``
    references valid for the sink's lifetime.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"sink capacity must be > 0, not {capacity}")
        self.capacity = capacity
        # Trimming deletes from the front of a list — a memmove of
        # every surviving pointer — so it must not fire per emit once
        # the buffer is full.  Emits let the buffer overshoot by a
        # slack chunk and trim back to capacity in one cut (amortized:
        # one memmove per ~slack emits); readers trim exactly.
        self._trim_at = capacity + max(64, capacity >> 3)
        self._slots: list[Span | tuple] = []
        self._dropped = 0  # entries trimmed away (total ever = dropped + len)
        #: Bound ``list.append`` — the no-frame emit for per-op hot paths.
        self.append_raw = self._slots.append

    def emit(self, span: Span | tuple) -> None:
        self._slots.append(span)
        if len(self._slots) >= self._trim_at:
            self._trim()

    def _trim(self) -> None:
        slots = self._slots
        excess = len(slots) - self.capacity
        if excess > 0:
            del slots[:excess]  # in-place: bound append_raw stays valid
            self._dropped += excess

    def __len__(self) -> int:
        return min(len(self._slots), self.capacity)

    @property
    def emitted(self) -> int:
        """Total spans ever emitted (including trimmed-away ones)."""
        return self._dropped + len(self._slots)

    def spans(self) -> list[Span]:
        """Snapshot of retained spans, oldest first (best effort)."""
        self._trim()
        slots = self._slots
        out: list[Span] = []
        for i in range(len(slots)):
            rec = slots[i]
            if rec.__class__ is tuple:
                span = _materialize_leaf(rec)
                if slots[i] is rec:  # atomic under the GIL: keep ids stable
                    slots[i] = span
                rec = span
            out.append(rec)
        return out

    def for_trace(self, trace_id: str) -> list[Span]:
        """All retained spans of one trace, oldest first."""
        return [s for s in self.spans() if s.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids present in the sink, oldest first."""
        seen: dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        del self._slots[:]  # in-place: bound append_raw stays valid
        self._dropped = 0


#: Current span for implicit parenting. Context-local: flows through
#: nested ``with tracer.span(...)`` blocks but NOT into worker threads.
_CURRENT_SPAN: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)


class _SpanHandle:
    """Context manager that finishes (and emits) its span on exit."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token: Any = None

    def __enter__(self) -> Span:
        self._token = _CURRENT_SPAN.set(self._span)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _CURRENT_SPAN.reset(self._token)
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer.finish(self._span)
        return False


class _ActivationHandle:
    """Context manager that installs an existing span as current."""

    __slots__ = ("_span", "_token")

    def __init__(self, span: Span) -> None:
        self._span = span
        self._token: Any = None

    def __enter__(self) -> Span:
        self._token = _CURRENT_SPAN.set(self._span)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _CURRENT_SPAN.reset(self._token)
        return False


class Tracer:
    """Creates, parents, times, and emits spans.

    ``parent`` resolution for a new span, in priority order: an explicit
    :class:`Span` or :class:`SpanContext` argument, then the
    context-local current span, then none (the span roots a new trace
    with a fresh trace id).
    """

    enabled = True

    def __init__(
        self,
        sink: SpanSink | None = None,
        clock: Clock | None = None,
        capacity: int = 4096,
    ) -> None:
        self.sink = sink if sink is not None else SpanSink(capacity)
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        # Bound once: start/finish are the hottest calls in the repo
        # when tracing is on (every executor op), so they must not
        # re-resolve attribute chains per span.  ``now_fn`` is the
        # clock's cheapest callable (the raw C builtin for real clocks).
        self._now = self.clock.now_fn
        self._emit = self.sink.emit

    # -- span lifecycle ----------------------------------------------------

    def start(
        self,
        name: str,
        parent: Span | SpanContext | None = None,
        trace_id: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Begin a span without installing it as current (manual mode)."""
        if parent is None:
            parent = _CURRENT_SPAN.get()
        if parent is not None:
            resolved_trace = parent.trace_id
            parent_id: str | None = parent.span_id
        else:
            resolved_trace = trace_id if trace_id is not None else _new_trace_id()
            parent_id = None
        # Slots are stored directly (no Span.__init__ frame): this path
        # is gated at <= 5% of level-7 V-cycle wall-clock by
        # benchmarks/bench_obs.py, and every skipped call counts.
        span = _new_span(Span)
        span.name = name
        span.trace_id = resolved_trace
        span.span_id = f"{_PID_HEX}-{next(_SPAN_IDS):x}"
        span.parent_id = parent_id
        span.end_s = None
        span.attrs = attrs
        span.pid = _PID
        span.tid = _get_ident()
        span.start_s = self._now()
        return span

    def begin(
        self,
        name: str,
        attrs: dict[str, Any],
        parent: Span | SpanContext | None,
    ) -> Span:
        """Begin a span with an explicit parent and a caller-owned attrs dict.

        The hot-path variant of :meth:`start` for callers that manage
        their own parent chain (the executor tracks the enclosing
        ``mg.level`` span in a plain attribute — a contextvar set/reset
        per recursion level would allocate HAMT nodes and tokens).  The
        span is not installed as current; ``attrs`` may be shared across
        spans and must not be mutated afterwards.
        """
        span = _new_span(Span)
        span.name = name
        if parent is not None:
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        else:
            span.trace_id = _new_trace_id()
            span.parent_id = None
        span.span_id = f"{_PID_HEX}-{next(_SPAN_IDS):x}"
        span.end_s = None
        span.attrs = attrs
        span.pid = _PID
        span.tid = _get_ident()
        span.start_s = self._now()
        return span

    def leaf(
        self,
        name: str,
        attrs: dict[str, Any],
        start_s: float,
        parent: Span | SpanContext | None = None,
    ) -> float:
        """Record a completed leaf operation; returns its duration.

        The hottest call in the repo when tracing is on: per-op kernel
        spans are recorded *after the fact* as one deferred tuple —
        no Span allocation, no id formatting, no contextvar traffic
        (the caller passes the parent; ``None`` falls back to the
        context).  The sink materializes real Spans lazily at read
        time (:func:`_materialize_leaf`).  ``attrs`` may be shared
        across records and must not be mutated afterwards.  The caller
        supplies ``start_s`` from this tracer's clock.
        """
        end_s = self._now()
        if parent is None:
            parent = _CURRENT_SPAN.get()
        self._emit((name, attrs, start_s, end_s, parent, _PID, _get_ident()))
        return end_s - start_s

    def finish(self, span: Span) -> None:
        """Stamp the end time and emit to the sink."""
        span.end_s = self._now()
        self._emit(span)

    def span(
        self,
        name: str,
        parent: Span | SpanContext | None = None,
        trace_id: str | None = None,
        **attrs: Any,
    ) -> _SpanHandle:
        """``with tracer.span("name") as s:`` — timed, current, emitted."""
        return _SpanHandle(self, self.start(name, parent, trace_id, **attrs))

    def event(
        self,
        name: str,
        parent: Span | SpanContext | None = None,
        **attrs: Any,
    ) -> Span:
        """Emit a zero-duration span (a point annotation in the tree)."""
        span = self.start(name, parent, **attrs)
        span.end_s = span.start_s
        self.sink.emit(span)
        return span

    # -- context plumbing --------------------------------------------------

    def activate(self, span: Span) -> _ActivationHandle:
        """Install ``span`` as the context-local parent for a block.

        Used after a boundary crossing (worker thread, subprocess) to
        re-root implicit parenting under a span created elsewhere.
        """
        return _ActivationHandle(span)

    def current(self) -> Span | None:
        return _CURRENT_SPAN.get()

    def context(self) -> SpanContext | None:
        """Propagatable context of the current span, if any."""
        span = _CURRENT_SPAN.get()
        return span.context() if span is not None else None

    def new_trace_id(self) -> str:
        return _new_trace_id()

    # -- reading -----------------------------------------------------------

    def spans(self) -> list[Span]:
        return self.sink.spans()

    def for_trace(self, trace_id: str) -> list[Span]:
        return self.sink.for_trace(trace_id)


class _NullSpan:
    """Inert span stand-in; every mutation is a no-op."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None
    name = "noop"
    start_s = 0.0
    end_s = 0.0
    attrs: dict[str, Any] = {}
    duration_s = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def context(self) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _NullHandle:
    """Shared allocation-free context manager for the no-op tracer."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class NoopTracer:
    """Zero-overhead tracer: every operation returns a shared inert object.

    ``span()`` hands back one preallocated context manager — no span,
    no clock read, no sink write — so components can hold a tracer
    unconditionally and pay (almost) nothing when tracing is off.
    """

    enabled = False
    sink = None
    clock = MONOTONIC_CLOCK

    def start(self, name: str, *args: Any, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def begin(self, name: str, attrs: Any, parent: Any) -> _NullSpan:
        return _NULL_SPAN

    def leaf(self, name: str, attrs: Any, start_s: float, parent: Any = None) -> float:
        return 0.0

    def finish(self, span: Any) -> None:
        return None

    def span(self, name: str, *args: Any, **attrs: Any) -> _NullHandle:
        return _NULL_HANDLE

    def event(self, name: str, *args: Any, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def activate(self, span: Any) -> _NullHandle:
        return _NULL_HANDLE

    def current(self) -> None:
        return None

    def context(self) -> None:
        return None

    def new_trace_id(self) -> str:
        return _new_trace_id()

    def spans(self) -> list[Span]:
        return []

    def for_trace(self, trace_id: str) -> list[Span]:
        return []


#: Shared no-op instance — the default everywhere tracing is optional.
NOOP_TRACER = NoopTracer()


def iter_children(spans: list[Span], parent_id: str | None) -> Iterator[Span]:
    """Yield spans whose parent is ``parent_id``, in emit order."""
    for span in spans:
        if span.parent_id == parent_id:
            yield span
