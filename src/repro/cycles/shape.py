"""Cycle shapes: the time/level path of a tuned algorithm's execution."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.tuner.trace import Trace, TraceEvent

__all__ = ["CycleShape", "ShapeStep", "extract_shape"]

StepKind = Literal["relax", "direct", "sor", "down", "up"]


@dataclass(frozen=True)
class ShapeStep:
    """One horizontal increment of the cycle diagram.

    ``kind``:
      * ``relax`` — a dot at ``level`` (one SOR(1.15) sweep inside RECURSE)
      * ``direct`` — solid horizontal arrow at ``level``
      * ``sor`` — dashed horizontal arrow at ``level`` (``count`` sweeps)
      * ``down`` — diagonal restriction ``level`` -> ``level - 1``
      * ``up`` — diagonal interpolation ``level`` -> ``level + 1``
    """

    kind: StepKind
    level: int
    count: int = 1


@dataclass(frozen=True)
class CycleShape:
    """A rendered-ready cycle: top level plus the step sequence."""

    top_level: int
    steps: tuple[ShapeStep, ...]

    @property
    def min_level(self) -> int:
        return min(s.level - (1 if s.kind == "down" else 0) for s in self.steps) if self.steps else self.top_level

    def width(self) -> int:
        return len(self.steps)

    def relaxations_per_level(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for s in self.steps:
            if s.kind == "relax":
                out[s.level] = out.get(s.level, 0) + 1
        return out


def extract_shape(trace: Trace | Sequence[TraceEvent]) -> CycleShape:
    """Convert an execution trace into a cycle shape.

    The trace's enter/exit events carry the recursion bookkeeping; the
    remaining events map one-to-one onto shape steps.
    """
    events = list(trace)
    if not events:
        raise ValueError("cannot extract a shape from an empty trace")
    top = events[0].level
    steps: list[ShapeStep] = []
    for ev in events:
        if ev.kind == "relax":
            steps.append(ShapeStep("relax", ev.level))
        elif ev.kind == "direct":
            steps.append(ShapeStep("direct", ev.level))
        elif ev.kind == "sor":
            steps.append(ShapeStep("sor", ev.level, max(ev.detail, 1)))
        elif ev.kind == "descend":
            steps.append(ShapeStep("down", ev.level))
        elif ev.kind == "ascend":
            steps.append(ShapeStep("up", ev.level - 1))
        # enter/exit/estimate events shape the call stack view, not the cycle
    return CycleShape(top_level=top, steps=tuple(steps))
