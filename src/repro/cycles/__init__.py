"""Cycle-shape extraction and rendering.

The paper visualizes tuned algorithms as multigrid cycles (Figures 5 and
14) and call stacks (Figure 4).  This package turns execution traces into
those artifacts: a :class:`CycleShape` is the time-ordered sequence of
level transitions and work events, rendered as ASCII diagrams using the
paper's notation — dots for relaxations, solid arrows for direct solves,
dashed arrows for iterated SOR.
"""

from repro.cycles.shape import CycleShape, extract_shape
from repro.cycles.render import render_cycle, render_call_stack
from repro.cycles.stats import CycleStats, cycle_stats

__all__ = [
    "CycleShape",
    "CycleStats",
    "cycle_stats",
    "extract_shape",
    "render_call_stack",
    "render_cycle",
]
