"""ASCII rendering of cycle shapes and call stacks.

Paper notation (Figure 5 caption): the path moves left to right through
time; down-slopes are restrictions, up-slopes interpolations; dots are
single red-black SOR relaxations; solid horizontal arrows are direct
solves; dashed horizontal arrows are iterated SOR solves.

ASCII mapping: ``*`` relaxation, ``\\`` restriction, ``/`` interpolation,
``==>`` direct solve, ``-N->`` iterated SOR (N sweeps).
"""

from __future__ import annotations

from repro.cycles.shape import CycleShape
from repro.tuner.choices import (
    DirectChoice,
    EstimateChoice,
    RecurseChoice,
    SORChoice,
)
from repro.util.validation import size_of_level

__all__ = ["render_call_stack", "render_cycle"]

_GLYPHS = {
    "relax": ["*"],
    "down": ["\\"],
    "up": ["/"],
}


def render_cycle(shape: CycleShape, legend: bool = True) -> str:
    """Multi-line ASCII diagram of a cycle shape.

    Rows are recursion levels (finest on top, labelled with the grid size);
    columns advance with time.
    """
    lo = shape.min_level
    hi = shape.top_level
    rows = {level: [] for level in range(lo, hi + 1)}

    def pad_to(width: int) -> None:
        for cells in rows.values():
            cells.extend(" " * (width - len(cells)))

    width = 0
    for step in shape.steps:
        if step.kind == "direct":
            glyph = "==>"
        elif step.kind == "sor":
            glyph = f"-{step.count}->"
        else:
            glyph = _GLYPHS[step.kind][0]
        pad_to(width)
        for level, cells in rows.items():
            cells.append(glyph if level == step.level else " " * len(glyph))
        width += len(glyph)

    lines = []
    for level in range(hi, lo - 1, -1):
        label = f"level {level:>2} (N={size_of_level(level):>5}) |"
        lines.append(label + "".join(rows[level]).rstrip())
    if legend:
        lines.append("")
        lines.append(
            "legend: * = SOR(1.15) relaxation, \\ = restrict, / = interpolate,"
        )
        lines.append("        ==> = direct solve, -N-> = N sweeps of SOR(w_opt)")
    return "\n".join(lines)


def render_call_stack(plan, level: int, acc_index: int, indent: int = 0) -> str:
    """Figure-4-style call stack of a tuned plan entry.

    Walks the plan table from (level, acc_index), printing which tuned
    accuracy variant each recursive call invokes and with how many
    iterations.
    """
    pad = "  " * indent
    n = size_of_level(level)
    choice = plan.choice(level, acc_index)
    header = f"{pad}MULTIGRID-V{acc_index + 1} @ level {level} (N={n}): "
    if hasattr(plan, "vplan"):
        header = f"{pad}FULL-MG{acc_index + 1} @ level {level} (N={n}): "
    if isinstance(choice, DirectChoice):
        return header + "direct solve"
    if isinstance(choice, SORChoice):
        return header + f"SOR(w_opt) x {choice.iterations}"
    if isinstance(choice, RecurseChoice):
        body = header + (
            f"RECURSE x {choice.iterations} -> coarse accuracy p{choice.sub_accuracy + 1}"
        )
        child = render_call_stack(plan, level - 1, choice.sub_accuracy, indent + 1)
        return body + "\n" + child
    if isinstance(choice, EstimateChoice):
        body = header + f"ESTIMATE(p{choice.estimate_accuracy + 1})"
        child = render_call_stack(plan, level - 1, choice.estimate_accuracy, indent + 1)
        solver = choice.solver
        if isinstance(solver, SORChoice):
            tail = f"{pad}  then SOR(w_opt) x {solver.iterations}"
        else:
            tail = (
                f"{pad}  then RECURSE x {solver.iterations} -> coarse accuracy "
                f"p{solver.sub_accuracy + 1}"
            )
            vtail = render_call_stack(
                plan.vplan, level - 1, solver.sub_accuracy, indent + 2
            )
            tail = tail + "\n" + vtail
        return body + "\n" + child + "\n" + tail
    raise TypeError(f"unknown choice {choice!r}")
