"""Summary statistics of cycle shapes, used in tests and EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cycles.shape import CycleShape

__all__ = ["CycleStats", "cycle_stats"]


@dataclass(frozen=True)
class CycleStats:
    """Quantities the paper reads off its cycle figures."""

    top_level: int
    #: coarsest level the cycle touches
    bottom_level: int
    #: level at which the direct solver is called (None if never)
    direct_level: int | None
    #: relaxation counts per level
    relaxations: dict[int, int]
    #: number of standalone iterated-SOR segments
    sor_segments: int
    #: total descend/ascend transitions
    transitions: int

    @property
    def depth(self) -> int:
        return self.top_level - self.bottom_level


def cycle_stats(shape: CycleShape) -> CycleStats:
    """Extract the comparison quantities from a shape."""
    direct_level: int | None = None
    sor_segments = 0
    transitions = 0
    for step in shape.steps:
        if step.kind == "direct":
            if direct_level is None or step.level < direct_level:
                direct_level = step.level
        elif step.kind == "sor":
            sor_segments += 1
        elif step.kind in ("down", "up"):
            transitions += 1
    return CycleStats(
        top_level=shape.top_level,
        bottom_level=shape.min_level,
        direct_level=direct_level,
        relaxations=shape.relaxations_per_level(),
        sor_segments=sor_segments,
        transitions=transitions,
    )
