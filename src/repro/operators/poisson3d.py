"""The 3-D operator families: constant-coefficient and anisotropic Poisson.

Both are *per-axis constant-coefficient* 7-point stencils,

    (A u)_p = [sum_a c_a (2 u_p - u_{p-e_a} - u_{p+e_a})] / h**2 ,

implemented once in :class:`AxisStencilOperator`:
:class:`ConstCoeffPoisson3D` is the unit-coefficient case (the 3-D
``-laplacian_h``), and :class:`AnisotropicPoisson3D` scales the x/y axes
by per-axis epsilons — the 3-D analogue of the textbook hard case for
point smoothers, where the tuned cycle shape diverges from the isotropic
one.  The direct solve uses a cached SuperLU factorization
(:mod:`repro.linalg.sparse_nd`): in 3-D the natural-order bandwidth is
(n-2)**2, so the 2-D band-Cholesky backends do not apply.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.linalg.sparse_nd import AxisStencilFactor

from repro.grids.poisson import (
    apply_axis_stencil,
    residual_axis_stencil,
    rhs_scale,
)
from repro.operators.base import StencilOperator
from repro.operators.spec import OperatorFamily, OperatorSpec, register_family
from repro.relax.jacobi import jacobi_sweeps_axes3d
from repro.relax.sor import sor_redblack_axes3d

__all__ = [
    "AnisotropicPoisson3D",
    "AxisStencilOperator",
    "ConstCoeffPoisson3D",
    "const_poisson3d",
]


class AxisStencilOperator(StencilOperator):
    """Constant per-axis-coefficient (2d+1)-point stencil operator.

    ``coeffs`` has one strictly positive entry per grid axis; the stencil
    is symmetric by construction, so SOR/Jacobi smoothing and the sparse
    direct solve all apply.
    """

    def __init__(self, spec: OperatorSpec, n: int, coeffs: tuple[float, ...]) -> None:
        super().__init__(spec, n, ndim=len(coeffs))
        coeffs = tuple(float(c) for c in coeffs)
        if any(c <= 0.0 for c in coeffs):
            raise ValueError(f"axis coefficients must be > 0, got {coeffs}")
        self.coeffs = coeffs
        self._diag: np.ndarray | None = None
        self._factor: "AxisStencilFactor | None" = None

    # -- kernels ----------------------------------------------------------

    def apply(self, u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        self._check_size(u)
        return apply_axis_stencil(u, self.coeffs, out)

    def residual(
        self, u: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        self._check_size(u)
        return residual_axis_stencil(u, b, self.coeffs, out)

    def sor_sweeps(
        self, u: np.ndarray, b: np.ndarray, omega: float, sweeps: int = 1
    ) -> np.ndarray:
        self._check_size(u)
        return sor_redblack_axes3d(u, b, self.coeffs, omega, sweeps)

    def jacobi_sweeps(
        self, u: np.ndarray, b: np.ndarray, omega: float, sweeps: int = 1
    ) -> np.ndarray:
        self._check_size(u)
        return jacobi_sweeps_axes3d(u, b, self.coeffs, omega, sweeps)

    def diagonal(self) -> np.ndarray:
        if self._diag is None:
            diag = np.full(
                (self.n,) * self.ndim,
                2.0 * sum(self.coeffs) * rhs_scale(self.n),
            )
            diag.setflags(write=False)
            self._diag = diag
        return self._diag

    # -- direct solve -----------------------------------------------------

    def direct_solve(self, x: np.ndarray, b: np.ndarray, solver=None) -> np.ndarray:
        """Sparse-LU interior solve (``solver`` is ignored: the legacy 2-D
        band solvers cannot represent a 3-D stencil)."""
        self._check_size(x)
        from repro.linalg.sparse_nd import AxisStencilFactor, solve_axis_stencil

        if self._factor is None:
            self._factor = AxisStencilFactor(self.n, self.coeffs)
        return solve_axis_stencil(x, b, self.coeffs, self._factor)


class ConstCoeffPoisson3D(AxisStencilOperator):
    """-laplacian_h in 3-D: the 7-point stencil with the 6/h**2 diagonal."""

    def __init__(self, spec: OperatorSpec, n: int) -> None:
        super().__init__(spec, n, (1.0, 1.0, 1.0))

    def coarsen(self) -> "ConstCoeffPoisson3D":
        # All 3-D Poisson instances are interchangeable per size; share
        # the module cache so sparse factorizations are reused too.
        from repro.grids.grid import coarsen_size

        return const_poisson3d(coarsen_size(self.n))


class AnisotropicPoisson3D(AxisStencilOperator):
    """A u = -(epsx u_xx + epsy u_yy + u_zz), per-axis 0 < eps <= 1.

    x runs along array axis 0, y along axis 1, z along axis 2.  Shrinking
    an epsilon decouples that axis, which point smoothers handle poorly —
    the problem-dependence the autotuner exists to exploit, now in 3-D.
    """

    def __init__(
        self, spec: OperatorSpec, n: int, epsx: float = 0.1, epsy: float = 1.0
    ) -> None:
        for name, eps in (("epsx", epsx), ("epsy", epsy)):
            if not 0.0 < eps <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], not {eps!r}")
        super().__init__(spec, n, (float(epsx), float(epsy), 1.0))
        self.epsx = float(epsx)
        self.epsy = float(epsy)


register_family(
    OperatorFamily(
        name="poisson3d",
        builder=lambda spec, n: ConstCoeffPoisson3D(spec, n),
        defaults=(),
        description="constant-coefficient 7-point Poisson (-laplacian, 3-D)",
        ndim=3,
    )
)

register_family(
    OperatorFamily(
        name="anisotropic3d",
        builder=AnisotropicPoisson3D,
        defaults=(("epsx", 0.1), ("epsy", 1.0)),
        description="anisotropic 3-D Poisson -(epsx u_xx + epsy u_yy + u_zz)",
        ndim=3,
    )
)

_CACHE: dict[int, ConstCoeffPoisson3D] = {}


def const_poisson3d(n: int) -> ConstCoeffPoisson3D:
    """Shared per-size default 3-D Poisson instance (the 3-D hot path)."""
    op = _CACHE.get(n)
    if op is None:
        from repro.operators.spec import operator_spec

        op = _CACHE[n] = ConstCoeffPoisson3D(operator_spec("poisson3d"), n)
    return op
