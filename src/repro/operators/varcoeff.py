"""Variable-coefficient diffusion: A u = -div(c(x, y) grad u).

Discretized with the standard face-averaged finite-volume stencil on the
vertex grid: the coupling through the face between (i, j) and (i, j+1)
is c_{i,j+1/2}/h**2 with c at the face taken as the mean of the two
vertex values, and the diagonal is the sum of the four face couplings —
a symmetric M-matrix for any c > 0, so banded Cholesky and red-black
SOR both apply.  Coarse operators rediscretize the same analytic field
(:mod:`repro.operators.coefficients`) on the coarser grid.
"""

from __future__ import annotations

import numpy as np

from repro.grids.poisson import rhs_scale
from repro.operators.base import FivePointOperator
from repro.operators.coefficients import coefficient_field
from repro.operators.spec import OperatorFamily, OperatorSpec, register_family

__all__ = ["VariableCoefficientDiffusion"]


class VariableCoefficientDiffusion(FivePointOperator):
    """-div(c grad u) with a named analytic coefficient field."""

    def __init__(
        self,
        spec: OperatorSpec,
        n: int,
        field: str = "waves",
        amplitude: float = 1.0,
        kx: int = 2,
        ky: int = 2,
        seed: int = 0,
    ) -> None:
        c = coefficient_field(field, n, amplitude=amplitude, kx=kx, ky=ky, seed=seed)
        inv_h2 = rhs_scale(n)
        v_face = 0.5 * (c[:-1, :] + c[1:, :]) * inv_h2
        h_face = 0.5 * (c[:, :-1] + c[:, 1:]) * inv_h2
        north = np.zeros((n, n))
        south = np.zeros((n, n))
        west = np.zeros((n, n))
        east = np.zeros((n, n))
        north[1:, :] = v_face
        south[:-1, :] = v_face
        west[:, 1:] = h_face
        east[:, :-1] = h_face
        diag = north + south + west + east
        super().__init__(spec, n, north, south, west, east, diag)
        c.setflags(write=False)
        #: the vertex-sampled coefficient field (read-only)
        self.coefficients = c
        self.field = field


register_family(
    OperatorFamily(
        name="varcoeff",
        builder=VariableCoefficientDiffusion,
        defaults=(
            ("amplitude", 1.0),
            ("field", "waves"),
            ("kx", 2),
            ("ky", 2),
            ("seed", 0),
        ),
        description="variable-coefficient diffusion -div(c(x,y) grad u)",
    )
)
