"""Operator specs: stable, picklable identities for problem operators.

An :class:`OperatorSpec` names an operator *family* ("poisson",
"varcoeff", "anisotropic") plus its non-default parameters.  Specs are
the currency every layer above the kernels trades in: tuning keys,
campaign cells, parallel trial tasks and plan metadata all carry the
spec's canonical string, and the concrete level-bound
:class:`~repro.operators.base.StencilOperator` is only instantiated
where grids are touched.

The canonical string grammar is ``family`` or ``family(k=v,k=v)`` with
parameters sorted by name and defaults omitted, so two specs describe
the same operator exactly when their canonical strings are equal.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Mapping, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.operators.base import StencilOperator

__all__ = [
    "POISSON",
    "OperatorFamily",
    "OperatorSpec",
    "default_operator_spec",
    "get_family",
    "make_operator",
    "operator_families",
    "operator_spec",
    "parse_operator",
    "register_family",
    "shared_operator",
]

Param = Union[int, float, str]


def _fmt(value: Param) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _coerce(value: Param, default: Param, name: str) -> Param:
    """Coerce ``value`` to the type of the family default for ``name``."""
    try:
        if isinstance(default, int) and not isinstance(default, bool):
            as_float = float(value)
            if not as_float.is_integer():
                raise ValueError("not an integer")
            return int(as_float)
        if isinstance(default, float):
            return float(value)
        return str(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"operator param {name}={value!r} is not {type(default).__name__}-like"
        ) from exc


@dataclass(frozen=True)
class OperatorSpec:
    """One operator family plus its (non-default) parameters.

    Construct via :func:`operator_spec` / :func:`parse_operator`, which
    validate against the family registry and normalize params (sorted,
    defaults dropped) so equal operators compare and hash equal.
    """

    family: str = "poisson"
    params: tuple[tuple[str, Param], ...] = ()

    def param_dict(self) -> dict[str, Param]:
        return dict(self.params)

    def canonical(self) -> str:
        """The stable text form (storage keys, CLI, plan metadata)."""
        if not self.params:
            return self.family
        inner = ",".join(f"{k}={_fmt(v)}" for k, v in self.params)
        return f"{self.family}({inner})"

    def fingerprint(self) -> str:
        """Stable identity of the operator (currently its canonical form)."""
        return self.canonical()

    @property
    def is_default_poisson(self) -> bool:
        """True for the constant-coefficient Poisson default (the legacy
        operator every pre-operator-layer artifact implicitly meant)."""
        return self.family == "poisson" and not self.params

    @property
    def ndim(self) -> int:
        """Grid dimensionality of the operator's family (2 or 3)."""
        return get_family(self.family).ndim

    def instantiate(self, n: int) -> "StencilOperator":
        """The concrete operator bound to grid size ``n``."""
        return get_family(self.family).build(self, n)

    def __str__(self) -> str:
        return self.canonical()


#: The default spec: constant-coefficient 5-point Poisson.
POISSON = OperatorSpec("poisson", ())


@dataclass(frozen=True)
class OperatorFamily:
    """Registered operator family: defaults plus a level-bound builder."""

    name: str
    builder: Callable[..., "StencilOperator"] = field(compare=False)
    defaults: tuple[tuple[str, Param], ...] = ()
    description: str = ""
    #: grid dimensionality the family's operators are bound to
    ndim: int = 2

    def normalize(self, given: Mapping[str, Param]) -> tuple[tuple[str, Param], ...]:
        defaults = dict(self.defaults)
        unknown = sorted(set(given) - set(defaults))
        if unknown:
            raise ValueError(
                f"unknown param(s) {unknown} for operator family {self.name!r}; "
                f"have {sorted(defaults)}"
            )
        out: list[tuple[str, Param]] = []
        for key in sorted(defaults):
            if key not in given:
                continue
            value = _coerce(given[key], defaults[key], key)
            if value != defaults[key]:
                out.append((key, value))
        return tuple(out)

    def build(self, spec: OperatorSpec, n: int) -> "StencilOperator":
        params = dict(self.defaults)
        params.update(spec.params)
        return self.builder(spec, n, **params)


_FAMILIES: dict[str, OperatorFamily] = {}


def register_family(family: OperatorFamily) -> OperatorFamily:
    _FAMILIES[family.name] = family
    return family


def _ensure_builtin() -> None:
    # Importing the implementation modules registers the built-in families
    # as a side effect; deferred so spec.py carries no heavy dependencies.
    import repro.operators.anisotropic  # noqa: F401
    import repro.operators.poisson  # noqa: F401
    import repro.operators.poisson3d  # noqa: F401
    import repro.operators.varcoeff  # noqa: F401


def default_operator_spec(ndim: int = 2) -> OperatorSpec:
    """The default (constant-coefficient Poisson) spec for a dimensionality."""
    if ndim == 2:
        return POISSON
    if ndim == 3:
        return operator_spec("poisson3d")
    raise ValueError(f"no default operator for ndim={ndim}")


def get_family(name: str) -> OperatorFamily:
    _ensure_builtin()
    family = _FAMILIES.get(name)
    if family is None:
        raise ValueError(
            f"unknown operator family {name!r}; have {sorted(_FAMILIES)}"
        )
    return family


def operator_families() -> dict[str, OperatorFamily]:
    """Registered families by name (built-ins plus any user-registered)."""
    _ensure_builtin()
    return dict(_FAMILIES)


def operator_spec(family: str, **params: Param) -> OperatorSpec:
    """A validated, normalized spec for ``family`` with ``params``."""
    fam = get_family(family)
    return OperatorSpec(family=fam.name, params=fam.normalize(params))


_SPEC_RE = re.compile(r"^\s*([A-Za-z][\w-]*)\s*(?:\((.*)\))?\s*$")


def _parse_value(text: str) -> Param:
    text = text.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def parse_operator(value: "OperatorSpec | str | None") -> OperatorSpec:
    """Parse an operator given as a spec, a canonical string, or None.

    ``None`` means the default Poisson operator.  Strings follow the
    canonical grammar: ``poisson``, ``anisotropic(epsilon=0.01)``,
    ``varcoeff(field=bump,amplitude=4.0)``.
    """
    if value is None:
        return POISSON
    if isinstance(value, OperatorSpec):
        return operator_spec(value.family, **value.param_dict())
    match = _SPEC_RE.match(str(value))
    if match is None:
        raise ValueError(f"cannot parse operator spec {value!r}")
    family, inner = match.group(1), match.group(2)
    params: dict[str, Param] = {}
    if inner and inner.strip():
        for item in inner.split(","):
            if "=" not in item:
                raise ValueError(
                    f"operator param {item.strip()!r} in {value!r} is not k=v"
                )
            key, _, raw = item.partition("=")
            params[key.strip()] = _parse_value(raw)
    return operator_spec(family, **params)


def make_operator(value: "OperatorSpec | str | None", n: int) -> "StencilOperator":
    """Instantiate an operator (spec, canonical string, or None) at size ``n``."""
    return parse_operator(value).instantiate(n)


# Sized for several operator families across a full level hierarchy
# (entries carry coarse chains and cached direct factorizations, so
# eviction is a real cost — but so is pinning factors at large n).
@lru_cache(maxsize=32)
def _shared_instance(spec: OperatorSpec, n: int) -> "StencilOperator":
    return spec.instantiate(n)


def shared_operator(value: "OperatorSpec | str | None", n: int) -> "StencilOperator":
    """Like :func:`make_operator`, but memoized per (spec, size).

    Operator instances cache derived state (coarse hierarchy, direct
    factorizations); sharing them across problems and tuner evaluations
    amortizes that setup.  For the default Poisson spec this returns the
    module-shared delegating instance.
    """
    spec = parse_operator(value)
    if spec.is_default_poisson:
        from repro.operators.poisson import const_poisson

        return const_poisson(n)
    if spec.family == "poisson3d" and not spec.params:
        from repro.operators.poisson3d import const_poisson3d

        return const_poisson3d(n)
    return _shared_instance(spec, n)
