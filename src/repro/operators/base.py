"""The operator protocol and the generic variable-weight 5-point kernel.

A :class:`StencilOperator` is one discrete operator *bound to a grid
size*: it applies A, computes residuals, smooths (red-black SOR /
weighted Jacobi parameterized by the true stencil weights), solves the
interior system exactly (banded Cholesky), and derives its next-coarser
self by rediscretization (``coarsen``).  Everything above this layer —
cycles, tuners, plan executors, campaigns — talks to this interface and
never to a concrete stencil.

:class:`FivePointOperator` implements the protocol for any symmetric
5-point stencil given as full-grid weight arrays; the variable-coefficient
and anisotropic families subclass it and only build weights.  The
constant-coefficient Poisson family instead delegates to the original
hand-tuned kernels (see :mod:`repro.operators.poisson`) so the default
path stays byte-identical to the pre-operator-layer code.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.grids.grid import coarsen_size, prepare_out
from repro.grids.poisson import rhs_scale
from repro.operators.spec import OperatorSpec
from repro.relax.jacobi import jacobi_sweeps_stencil
from repro.relax.sor import sor_redblack_stencil
from repro.relax.weights import omega_opt
from repro.util.validation import check_square_grid, level_of_size

__all__ = ["FivePointOperator", "StencilOperator"]


class StencilOperator(ABC):
    """One discrete operator bound to grid size ``n`` (see module docs).

    ``ndim`` is the grid dimensionality the operator's kernels act on
    (2 for the historical families, 3 for the ``*3d`` families); it
    matches the registered family's ``ndim``.
    """

    def __init__(self, spec: OperatorSpec, n: int, ndim: int = 2) -> None:
        level_of_size(n)  # validates n = 2**k + 1
        self.spec = spec
        self.n = n
        self.ndim = ndim
        self._coarse: StencilOperator | None = None

    # -- kernels ----------------------------------------------------------

    @abstractmethod
    def apply(self, u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """A u on the interior; zero on the boundary ring."""

    @abstractmethod
    def residual(
        self, u: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """b - A u on the interior; zero on the boundary ring."""

    @abstractmethod
    def sor_sweeps(
        self, u: np.ndarray, b: np.ndarray, omega: float, sweeps: int = 1
    ) -> np.ndarray:
        """Red-black SOR sweeps on ``u`` in place."""

    @abstractmethod
    def jacobi_sweeps(
        self, u: np.ndarray, b: np.ndarray, omega: float, sweeps: int = 1
    ) -> np.ndarray:
        """Weighted-Jacobi sweeps on ``u`` in place."""

    @abstractmethod
    def diagonal(self) -> np.ndarray:
        """The stencil diagonal of A as a full-grid array."""

    @abstractmethod
    def direct_solve(self, x: np.ndarray, b: np.ndarray, solver=None) -> np.ndarray:
        """Exact interior solve with Dirichlet data from ``x``'s ring.

        ``solver`` is a legacy Poisson :class:`~repro.linalg.direct.
        DirectSolver` honored only by the constant-coefficient family
        (it keeps that path byte-identical and shares its factorization
        cache); generic operators own their factorizations.
        """

    # -- shared behaviour -------------------------------------------------

    def rhs_scale(self) -> float:
        """The 1/h**2 discretization factor at this size."""
        return rhs_scale(self.n)

    def omega_opt(self) -> float:
        """Standalone-SOR weight.  The Poisson-optimal 2/(1 + sin(pi h))
        is used for every family: for non-Poisson operators it is a
        heuristic, and trained iteration counts absorb the difference."""
        return omega_opt(self.n)

    def coarsen(self) -> "StencilOperator":
        """The rediscretized operator on the next-coarser grid.

        Resolved through the shared per-(spec, size) cache, so coarse
        hierarchies (and their direct-solve factorizations) are shared
        with every other consumer of the same operator.
        """
        if self._coarse is None:
            from repro.operators.spec import shared_operator

            self._coarse = shared_operator(self.spec, coarsen_size(self.n))
        return self._coarse

    def fingerprint(self) -> str:
        """Stable identity of the operator family + parameters."""
        return self.spec.fingerprint()

    def _check_size(self, u: np.ndarray) -> None:
        """Guard for the kernels: the operator is bound to one grid shape."""
        if u.ndim != self.ndim:
            raise ValueError(
                f"operator is {self.ndim}-D, grid has ndim={u.ndim}"
            )
        if u.shape[0] != self.n:
            raise ValueError(
                f"operator bound to n={self.n}, grid is {u.shape[0]}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec.canonical()}, n={self.n})"


class FivePointOperator(StencilOperator):
    """Generic symmetric 5-point stencil with per-point weights.

    (A u)_ij = diag_ij u_ij - north_ij u_{i-1,j} - south_ij u_{i+1,j}
               - west_ij u_{i,j-1} - east_ij u_{i,j+1}

    Weight arrays are full-grid (n, n); only interior entries are read.
    The stencil must be symmetric (north_{i+1,j} == south_{i,j},
    east_{i,j} == west_{i,j+1} on interior couplings) so the interior
    matrix admits a banded Cholesky factorization.
    """

    def __init__(
        self,
        spec: OperatorSpec,
        n: int,
        north: np.ndarray,
        south: np.ndarray,
        west: np.ndarray,
        east: np.ndarray,
        diag: np.ndarray,
    ) -> None:
        super().__init__(spec, n)
        for name, arr in (
            ("north", north), ("south", south), ("west", west),
            ("east", east), ("diag", diag),
        ):
            if arr.shape != (n, n):
                raise ValueError(f"{name} shape {arr.shape} != ({n}, {n})")
        if not np.allclose(south[1:-2, 1:-1], north[2:-1, 1:-1]):
            raise ValueError("stencil is not symmetric (south/north mismatch)")
        if not np.allclose(east[1:-1, 1:-2], west[1:-1, 2:-1]):
            raise ValueError("stencil is not symmetric (east/west mismatch)")
        self.north = north
        self.south = south
        self.west = west
        self.east = east
        self.diag = diag
        # Residual needs -diag per call; the stencil is immutable after
        # construction, so materialize the negation once.
        self._neg_diag = -diag[1:-1, 1:-1]
        self._factor: np.ndarray | None = None

    # -- kernels ----------------------------------------------------------

    def apply(self, u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        check_square_grid(u, "u")
        self._check_size(u)
        out = prepare_out(out, u.shape, u.dtype, "u")
        acc = out[1:-1, 1:-1]
        np.multiply(u[1:-1, 1:-1], self.diag[1:-1, 1:-1], out=acc)
        acc -= self.north[1:-1, 1:-1] * u[:-2, 1:-1]
        acc -= self.south[1:-1, 1:-1] * u[2:, 1:-1]
        acc -= self.west[1:-1, 1:-1] * u[1:-1, :-2]
        acc -= self.east[1:-1, 1:-1] * u[1:-1, 2:]
        return out

    def residual(
        self, u: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        check_square_grid(u, "u")
        self._check_size(u)
        if b.shape != u.shape:
            raise ValueError(f"b shape {b.shape} != u shape {u.shape}")
        out = prepare_out(out, u.shape, u.dtype, "u")
        acc = out[1:-1, 1:-1]
        np.multiply(u[1:-1, 1:-1], self._neg_diag, out=acc)
        acc += self.north[1:-1, 1:-1] * u[:-2, 1:-1]
        acc += self.south[1:-1, 1:-1] * u[2:, 1:-1]
        acc += self.west[1:-1, 1:-1] * u[1:-1, :-2]
        acc += self.east[1:-1, 1:-1] * u[1:-1, 2:]
        acc += b[1:-1, 1:-1]
        return out

    def sor_sweeps(
        self, u: np.ndarray, b: np.ndarray, omega: float, sweeps: int = 1
    ) -> np.ndarray:
        self._check_size(u)
        return sor_redblack_stencil(
            u, b, self.north, self.south, self.west, self.east, self.diag,
            omega, sweeps,
        )

    def jacobi_sweeps(
        self, u: np.ndarray, b: np.ndarray, omega: float, sweeps: int = 1
    ) -> np.ndarray:
        self._check_size(u)
        return jacobi_sweeps_stencil(u, b, self.diag, self.residual, omega, sweeps)

    def diagonal(self) -> np.ndarray:
        return self.diag

    # -- direct solve -----------------------------------------------------

    def direct_solve(self, x: np.ndarray, b: np.ndarray, solver=None) -> np.ndarray:
        """Banded-Cholesky interior solve (``solver`` is ignored: legacy
        Poisson solvers cannot represent this stencil)."""
        check_square_grid(x, "x")
        self._check_size(x)
        if b.shape != x.shape:
            raise ValueError(f"b shape {b.shape} != x shape {x.shape}")
        if self._factor is None:
            from scipy.linalg import cholesky_banded

            self._factor = cholesky_banded(self._band_matrix(), lower=True)
        from scipy.linalg import cho_solve_banded

        rhs = self._interior_rhs(x, b)
        flat = cho_solve_banded((self._factor, True), rhs)
        x[1:-1, 1:-1] = flat.reshape(self.n - 2, self.n - 2)
        return x

    def _band_matrix(self) -> np.ndarray:
        """Lower band storage of the interior matrix (row-major unknowns)."""
        m = self.n - 2
        size = m * m
        ab = np.zeros((m + 1, size))
        ab[0] = self.diag[1:-1, 1:-1].reshape(-1)
        # First subdiagonal: -east coupling within a grid row, zero across
        # row boundaries (j = m-1 has no east interior neighbour).
        east = -self.east[1:-1, 1:-1].reshape(-1)
        east[m - 1 :: m] = 0.0
        ab[1, : size - 1] = east[:-1]
        # Subdiagonal m: -south coupling to the next grid row.
        ab[m, : size - m] = -self.south[1:-2, 1:-1].reshape(-1)
        return ab

    def _interior_rhs(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Flat interior RHS with the Dirichlet ring folded in."""
        rhs = b[1:-1, 1:-1].astype(np.float64, copy=True)
        rhs[0, :] += self.north[1, 1:-1] * x[0, 1:-1]
        rhs[-1, :] += self.south[-2, 1:-1] * x[-1, 1:-1]
        rhs[:, 0] += self.west[1:-1, 1] * x[1:-1, 0]
        rhs[:, -1] += self.east[1:-1, -2] * x[1:-1, -1]
        return rhs.reshape(-1)
