"""Anisotropic Poisson: A u = -(eps u_xx + u_yy), 0 < eps <= 1.

The textbook hard case for point smoothers: as eps shrinks, errors that
are smooth in y but oscillatory in x are barely damped by red-black
relaxation, so the optimal multigrid cycle invests differently than for
the isotropic operator — exactly the problem-dependence the autotuner
exists to exploit.  x runs along grid columns, y along rows.
"""

from __future__ import annotations

import numpy as np

from repro.grids.poisson import rhs_scale
from repro.operators.base import FivePointOperator
from repro.operators.spec import OperatorFamily, OperatorSpec, register_family

__all__ = ["AnisotropicPoisson"]


class AnisotropicPoisson(FivePointOperator):
    """eps-scaled 5-point stencil (constant weights, stored densely so the
    shared variable-weight kernels apply unchanged)."""

    def __init__(self, spec: OperatorSpec, n: int, epsilon: float = 0.1) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0, 1], not {epsilon!r}")
        inv_h2 = rhs_scale(n)
        shape = (n, n)
        north = np.full(shape, inv_h2)
        south = np.full(shape, inv_h2)
        west = np.full(shape, epsilon * inv_h2)
        east = np.full(shape, epsilon * inv_h2)
        diag = np.full(shape, 2.0 * (1.0 + epsilon) * inv_h2)
        super().__init__(spec, n, north, south, west, east, diag)
        self.epsilon = float(epsilon)


register_family(
    OperatorFamily(
        name="anisotropic",
        builder=AnisotropicPoisson,
        defaults=(("epsilon", 0.1),),
        description="anisotropic Poisson -(eps u_xx + u_yy)",
    )
)
