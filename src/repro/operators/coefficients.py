"""Named coefficient-field distributions for variable-coefficient operators.

Each field is an *analytic* function c(x, y) > 0 on the unit square,
evaluated on the vertex grid of any level — so rediscretizing on a
coarser grid samples the same underlying field, which is what makes
``coarsen()`` by rediscretization consistent across the hierarchy.  The
"random" family draws a fixed number of Fourier modes from a seeded
generator before evaluation, so it is equally deterministic in ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_grid_size

__all__ = ["COEFF_FIELDS", "coefficient_field"]


def _coords(n: int) -> tuple[np.ndarray, np.ndarray]:
    """(X, Y) vertex coordinates: x along columns, y along rows."""
    t = np.linspace(0.0, 1.0, n)
    return t[None, :], t[:, None]


def _constant(n: int, amplitude: float, kx: int, ky: int, seed: int) -> np.ndarray:
    return np.ones((n, n), dtype=np.float64)


def _waves(n: int, amplitude: float, kx: int, ky: int, seed: int) -> np.ndarray:
    """c = exp(a sin(2 pi kx x) sin(2 pi ky y)) — smooth, contrast e^{2a}."""
    x, y = _coords(n)
    return np.exp(amplitude * np.sin(2.0 * np.pi * kx * x) * np.sin(2.0 * np.pi * ky * y))


def _bump(n: int, amplitude: float, kx: int, ky: int, seed: int) -> np.ndarray:
    """c = 1 + a gaussian bump centered on the domain (width 0.15)."""
    x, y = _coords(n)
    r2 = (x - 0.5) ** 2 + (y - 0.5) ** 2
    return 1.0 + amplitude * np.exp(-r2 / (2.0 * 0.15**2))


_RANDOM_MODES = 3


def _random(n: int, amplitude: float, kx: int, ky: int, seed: int) -> np.ndarray:
    """c = exp(sum a_pq sin(pi p x) sin(pi q y)) with seeded a_pq.

    The 3x3 mode coefficients are drawn before any grid evaluation, so
    every grid size sees the same field.
    """
    rng = np.random.default_rng(seed)
    coeffs = rng.normal(size=(_RANDOM_MODES, _RANDOM_MODES))
    x, y = _coords(n)
    acc = np.zeros((n, n), dtype=np.float64)
    for p in range(1, _RANDOM_MODES + 1):
        for q in range(1, _RANDOM_MODES + 1):
            acc += (
                coeffs[p - 1, q - 1]
                / (p + q)
                * np.sin(np.pi * p * x)
                * np.sin(np.pi * q * y)
            )
    return np.exp(amplitude * acc)


COEFF_FIELDS = {
    "constant": _constant,
    "waves": _waves,
    "bump": _bump,
    "random": _random,
}


def coefficient_field(
    name: str, n: int, amplitude: float = 1.0, kx: int = 2, ky: int = 2, seed: int = 0
) -> np.ndarray:
    """Evaluate a named coefficient field on the (n, n) vertex grid."""
    check_grid_size(n)
    builder = COEFF_FIELDS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown coefficient field {name!r}; have {sorted(COEFF_FIELDS)}"
        )
    c = builder(n, float(amplitude), int(kx), int(ky), int(seed))
    if not np.all(c > 0.0):
        raise ValueError(f"coefficient field {name!r} is not strictly positive")
    return c
