"""The constant-coefficient Poisson family: the legacy default operator.

Every method delegates to the original hand-vectorized kernels
(:mod:`repro.grids.poisson`, :mod:`repro.relax.sor`,
:mod:`repro.relax.jacobi`, :mod:`repro.linalg.direct`), so code routed
through the operator layer executes exactly the same floating-point
operations in exactly the same order as the pre-operator-layer code —
results, tuned plans, and stored plan JSON stay byte-identical.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.grids.poisson import apply_poisson, residual as poisson_residual, rhs_scale
from repro.operators.base import StencilOperator
from repro.operators.spec import OperatorFamily, OperatorSpec, register_family
from repro.relax.jacobi import jacobi_sweeps
from repro.relax.sor import sor_redblack

__all__ = ["ConstCoeffPoisson", "const_poisson"]


class ConstCoeffPoisson(StencilOperator):
    """-laplacian_h with the 4/h**2 diagonal (delegating implementation)."""

    def __init__(self, spec: OperatorSpec, n: int) -> None:
        super().__init__(spec, n)
        self._default_direct: Any = None
        self._diag: np.ndarray | None = None

    def apply(self, u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        self._check_size(u)
        return apply_poisson(u, out)

    def residual(
        self, u: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        self._check_size(u)
        return poisson_residual(u, b, out)

    def sor_sweeps(
        self, u: np.ndarray, b: np.ndarray, omega: float, sweeps: int = 1
    ) -> np.ndarray:
        self._check_size(u)
        return sor_redblack(u, b, omega, sweeps)

    def jacobi_sweeps(
        self, u: np.ndarray, b: np.ndarray, omega: float, sweeps: int = 1
    ) -> np.ndarray:
        self._check_size(u)
        return jacobi_sweeps(u, b, omega, sweeps)

    def diagonal(self) -> np.ndarray:
        if self._diag is None:
            diag = np.full((self.n, self.n), 4.0 * rhs_scale(self.n))
            diag.setflags(write=False)
            self._diag = diag
        return self._diag

    def coarsen(self) -> "ConstCoeffPoisson":
        # All Poisson instances are interchangeable per size; share the
        # module cache so direct-solver factorizations are reused too.
        from repro.grids.grid import coarsen_size

        return const_poisson(coarsen_size(self.n))

    def direct_solve(self, x: np.ndarray, b: np.ndarray, solver=None) -> np.ndarray:
        self._check_size(x)
        if solver is None:
            if self._default_direct is None:
                from repro.linalg.direct import DirectSolver

                self._default_direct = DirectSolver(
                    backend="block", cache_factorization=True
                )
            solver = self._default_direct
        return solver.solve(x, b)


_POISSON_FAMILY = register_family(
    OperatorFamily(
        name="poisson",
        builder=lambda spec, n: ConstCoeffPoisson(spec, n),
        defaults=(),
        description="constant-coefficient 5-point Poisson (-laplacian)",
    )
)

_CACHE: dict[int, ConstCoeffPoisson] = {}


def const_poisson(n: int) -> ConstCoeffPoisson:
    """Shared per-size default-Poisson instance (the hot default path)."""
    op = _CACHE.get(n)
    if op is None:
        from repro.operators.spec import POISSON

        op = _CACHE[n] = ConstCoeffPoisson(POISSON, n)
    return op
