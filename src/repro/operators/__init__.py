"""Pluggable problem operators for the solver/tuner stack.

The stack was born speaking one language — the constant-coefficient 2D
Poisson 5-point stencil.  This package makes the operator a first-class
axis: an :class:`OperatorSpec` identifies a problem family (tuning keys,
campaign grids, and parallel trial tasks carry its canonical string),
and a :class:`StencilOperator` is the level-bound kernel bundle the
solvers and tuners actually call.  Three families ship built-in:

* ``poisson`` — the legacy default, delegating to the original kernels
  (byte-identical results and tuned plans);
* ``varcoeff`` — variable-coefficient diffusion -div(c(x,y) grad u)
  with named analytic coefficient fields;
* ``anisotropic`` — -(eps u_xx + u_yy), the classic case where the
  best cycle shape changes;
* ``poisson3d`` / ``anisotropic3d`` — the 3-D 7-point analogues
  (per-axis epsilons for the anisotropic family), opening the 3-D
  workload family end-to-end.

Known limitation: the machine cost model prices primitive ops
(``relax``, ``residual``, ...) by grid size only — a variable-weight
stencil sweep is charged like the constant-coefficient one (measured
~1.3x cheaper), so simulated costs compare candidates *within* an
operator family faithfully but understate absolute cost for non-default
operators.  Per-operator op shapes are a natural follow-up.
"""

from repro.operators.spec import (
    POISSON,
    OperatorFamily,
    OperatorSpec,
    get_family,
    make_operator,
    operator_families,
    operator_spec,
    parse_operator,
    register_family,
    shared_operator,
)
from repro.operators.base import FivePointOperator, StencilOperator
from repro.operators.coefficients import COEFF_FIELDS, coefficient_field
from repro.operators.poisson import ConstCoeffPoisson, const_poisson
from repro.operators.varcoeff import VariableCoefficientDiffusion
from repro.operators.anisotropic import AnisotropicPoisson
from repro.operators.poisson3d import (
    AnisotropicPoisson3D,
    AxisStencilOperator,
    ConstCoeffPoisson3D,
    const_poisson3d,
)
from repro.operators.spec import default_operator_spec

__all__ = [
    "COEFF_FIELDS",
    "POISSON",
    "AnisotropicPoisson",
    "AnisotropicPoisson3D",
    "AxisStencilOperator",
    "ConstCoeffPoisson",
    "ConstCoeffPoisson3D",
    "FivePointOperator",
    "OperatorFamily",
    "OperatorSpec",
    "StencilOperator",
    "VariableCoefficientDiffusion",
    "coefficient_field",
    "const_poisson",
    "const_poisson3d",
    "default_operator_spec",
    "get_family",
    "make_operator",
    "operator_families",
    "operator_spec",
    "parse_operator",
    "register_family",
    "shared_operator",
]
